"""Failure injection and edge cases: capacity exhaustion, empty inputs,
throttled sources, and error propagation through the engines."""

import pytest

from repro.dataflow import (
    Engine,
    FilterTile,
    Graph,
    LANES,
    MapTile,
    MergeTile,
    SinkTile,
    SourceTile,
    run_graph,
)
from repro.db import ExecutionContext, Table
from repro.db.operators import (
    hash_group_by,
    hash_join,
    order_by,
    scan_filter,
    window_aggregate,
)
from repro.errors import CapacityError, ReproError, SimulationError
from repro.memory import DramMemory, ScratchpadMemory
from repro.perf import CostModel
from repro.structures import (
    ChainedHashTable,
    HashTableDataflow,
    PartitionerDataflow,
)


class TestCapacityExhaustion:
    def test_hash_overflow_buffer_exhausted(self):
        ht = HashTableDataflow(n_buckets=4, spad_node_capacity=2,
                               overflow_capacity=2)
        with pytest.raises(CapacityError):
            ht.load([(k, k) for k in range(10)])

    def test_partitioner_block_pool_exhausted(self):
        pd = PartitionerDataflow(1, block_size=2, max_blocks=2)
        with pytest.raises(CapacityError):
            run_graph(pd.build_graph([(0, i) for i in range(100)]))

    def test_scratchpad_region_budget(self):
        mem = ScratchpadMemory("m")
        with pytest.raises(CapacityError):
            mem.region("huge", 1 << 20, 4)

    def test_dram_capacity_is_generous_but_finite(self):
        dram = DramMemory("d", capacity_words=100)
        dram.region("a", 50, 1)
        with pytest.raises(CapacityError):
            dram.region("b", 60, 1)

    def test_all_repro_errors_share_base(self):
        for exc in (CapacityError, SimulationError):
            assert issubclass(exc, ReproError)


class TestEmptyInputs:
    def test_empty_join(self):
        empty = Table.from_columns("e", k=[])
        out = hash_join(empty, empty, "k", "k")
        assert len(out) == 0

    def test_empty_group_by(self):
        empty = Table.from_columns("e", g=[], x=[])
        out = hash_group_by(empty, ["g"], {"n": ("count", None)})
        assert len(out) == 0

    def test_empty_window(self):
        empty = Table.from_columns("e", d=[], t=[], v=[])
        out = window_aggregate(empty, "d", "t", {"m": ("avg", "v")},
                               preceding=2)
        assert len(out) == 0

    def test_empty_filter_and_sort(self):
        empty = Table.from_columns("e", a=[])
        assert len(scan_filter(empty, lambda r: True)) == 0
        assert len(order_by(empty, "a")) == 0

    def test_empty_hash_table_probe(self):
        ht = ChainedHashTable(8)
        assert ht.probe(42) == []

    def test_cost_model_on_empty_trace(self):
        ctx = ExecutionContext()
        assert CostModel().query_runtime(ctx) == 0.0


class TestThrottledSources:
    def test_slow_producer_still_completes(self):
        g = Graph("slow")
        src = g.add(SourceTile("src", [(i,) for i in range(64)], rate=3))
        m = g.add(MapTile("m", lambda r: r))
        sink = g.add(SinkTile("sink"))
        g.connect(src, m)
        g.connect(m, sink)
        stats = run_graph(g)
        assert len(sink.records) == 64
        # 3 records/cycle instead of 16: occupancy reflects the throttle.
        assert stats.tiles["src"].lane_occupancy < 0.5

    def test_rate_clamped_to_lanes(self):
        src = SourceTile("src", [(1,)], rate=100)
        assert src.rate == LANES


class TestErrorPropagation:
    def test_map_exception_surfaces(self):
        g = Graph("boom")
        src = g.add(SourceTile("src", [(0,)]))
        m = g.add(MapTile("m", lambda r: 1 // r[0]))
        sink = g.add(SinkTile("sink"))
        g.connect(src, m)
        g.connect(m, sink)
        with pytest.raises(ZeroDivisionError):
            run_graph(g)

    def test_engine_budget_is_configurable(self):
        g = Graph("tiny")
        src = g.add(SourceTile("src", [(i,) for i in range(10_000)]))
        sink = g.add(SinkTile("sink"))
        g.connect(src, sink)
        with pytest.raises(SimulationError):
            Engine(g, max_cycles=10).run()


def _recirculating_graph(priority: bool):
    """src feeds a merge->map->filter loop; records circulate 16 times.

    With ``priority=False`` the loop-back edge into the merge is *not* the
    priority input, which is exactly the mis-wiring §III-A warns about:
    fresh threads starve the recirculating ones until every loop buffer is
    full and the fabric wedges.
    """
    g = Graph("loop")
    src = g.add(SourceTile("src", [(i, 0) for i in range(1024)]))
    merge = g.add(MergeTile("merge"))
    bump = g.add(MapTile("bump", lambda r: (r[0], r[1] + 1)))
    filt = g.add(FilterTile("filt", lambda r: r[1] < 16))
    sink = g.add(SinkTile("sink"))
    g.connect(src, merge)
    g.connect(merge, bump)
    g.connect(bump, filt)
    g.connect(filt, merge, producer_port=0, priority=priority)
    g.connect(filt, sink, producer_port=1)
    return g, sink


class TestDeadlockDetection:
    def test_cyclic_graph_without_priority_loopback_deadlocks(self):
        g, __ = _recirculating_graph(priority=False)
        with pytest.raises(SimulationError) as ei:
            Engine(g, deadlock_window=2_000).run()
        err = ei.value
        assert err.kind == "deadlock"
        assert err.graph == "loop"
        assert err.cycle is not None and err.cycle > 0
        assert "merge" in err.stuck_tiles
        assert any("filt->merge" in s for s in err.stuck_streams)
        # Streams must not be left open for reuse after the failure.
        assert all(s.eos for s in g.streams)

    def test_same_graph_with_priority_loopback_completes(self):
        g, sink = _recirculating_graph(priority=True)
        Engine(g, deadlock_window=2_000).run()
        assert len(sink.records) == 1024
        assert all(r[1] == 16 for r in sink.records)

    def test_stuck_report_names_buffers_and_head_records(self):
        g, __ = _recirculating_graph(priority=False)
        with pytest.raises(SimulationError) as ei:
            Engine(g, deadlock_window=2_000).run()
        message = str(ei.value)
        # Per-tile input occupancy like "merge[src->merge:2/2, ...]".
        assert "merge[" in message and ":2/2" in message
        # Head-of-line record summary for occupied streams.
        assert "head=(" in message


class TestOverrunDetection:
    def test_overrun_carries_structured_fields(self):
        g = Graph("tiny")
        src = g.add(SourceTile("src", [(i,) for i in range(10_000)]))
        sink = g.add(SinkTile("sink"))
        g.connect(src, sink)
        with pytest.raises(SimulationError) as ei:
            Engine(g, max_cycles=10).run()
        err = ei.value
        assert err.kind == "overrun"
        assert err.graph == "tiny"
        # The budget is exact: exactly max_cycles tick rounds run, and the
        # error reports the first cycle past the budget.
        assert err.cycle == 10
        assert "src" in err.stuck_tiles   # source still has records to emit
        assert all(s.eos for s in g.streams)


class TestCostBreakdown:
    def test_breakdown_covers_all_traces(self, tiny_rideshare):
        from repro.workloads import run_query
        ctx = ExecutionContext()
        run_query("q7", tiny_rideshare, ctx)
        breakdown = CostModel().query_breakdown(ctx)
        assert len(breakdown) == len(ctx.traces)
        assert all(b.bound in ("compute", "spad", "dram")
                   for __, b in breakdown)

    def test_breakdown_sums_to_trace_cycles(self, tiny_rideshare):
        from repro.workloads import run_query
        ctx = ExecutionContext()
        run_query("q3", tiny_rideshare, ctx)
        m = CostModel()
        total = sum(b.cycles for __, b in m.query_breakdown(ctx))
        assert total + len(ctx.traces) * m.stage_overhead_cycles == (
            pytest.approx(m.trace_cycles(ctx.traces)))
