"""Z-order curve and packed R-tree: encoding properties, window queries,
distance queries, spatial joins, and the dataflow traversal."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.dataflow import run_graph
from repro.structures import (
    COORD_MAX,
    PackedRTree,
    RTreeDataflow,
    center,
    contains,
    euclidean,
    expand,
    intersects,
    point_rect,
    rect,
    spatial_join,
    union,
    z_decode,
    z_encode,
)

coord = st.integers(0, COORD_MAX)


class TestZOrder:
    @given(coord, coord)
    def test_roundtrip(self, x, y):
        assert z_decode(z_encode(x, y)) == (x, y)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            z_encode(COORD_MAX + 1, 0)
        with pytest.raises(ValueError):
            z_encode(0, -1)

    def test_monotone_along_axes_at_origin(self):
        assert z_encode(0, 0) == 0
        assert z_encode(1, 0) == 1
        assert z_encode(0, 1) == 2
        assert z_encode(1, 1) == 3

    def test_locality_of_nearby_points(self):
        # Z-order preserves locality: close points usually have close
        # Z-values (the property that makes Z-sorted bulk loads work).
        base = z_encode(1000, 1000)
        near = z_encode(1001, 1001)
        far = z_encode(60000, 60000)
        assert abs(near - base) < abs(far - base)

    @given(coord, coord)
    def test_z_is_32_bit(self, x, y):
        assert 0 <= z_encode(x, y) < (1 << 32)


class TestRectHelpers:
    def test_rect_normalizes(self):
        assert rect(5, 6, 1, 2) == (1, 2, 5, 6)

    def test_intersects_touching_edges(self):
        assert intersects((0, 0, 10, 10), (10, 10, 20, 20))

    def test_disjoint(self):
        assert not intersects((0, 0, 1, 1), (3, 3, 4, 4))

    def test_contains(self):
        assert contains((0, 0, 10, 10), (2, 2, 3, 3))
        assert not contains((0, 0, 10, 10), (5, 5, 11, 6))

    def test_union_covers_both(self):
        u = union((0, 0, 1, 1), (5, 5, 6, 6))
        assert contains(u, (0, 0, 1, 1)) and contains(u, (5, 5, 6, 6))

    def test_expand(self):
        assert expand((5, 5, 6, 6), 2) == (3, 3, 8, 8)

    def test_center_and_distance(self):
        assert center((0, 0, 10, 10)) == (5, 5)
        assert euclidean(point_rect(0, 0), point_rect(3, 4)) == 5.0


def _random_points(n, extent=2000, seed=12):
    rng = random.Random(seed)
    return [(point_rect(rng.randrange(extent), rng.randrange(extent)), i)
            for i in range(n)]


class TestPackedRTree:
    def test_empty_tree(self):
        t = PackedRTree.bulk_load([])
        assert len(t) == 0
        assert t.window_query((0, 0, 100, 100)) == []

    def test_all_entries_preserved(self):
        pts = _random_points(300)
        t = PackedRTree.bulk_load(pts, fanout=8)
        assert sorted(v for __, v in t.all_entries()) == list(range(300))

    def test_bbox_covers_everything(self):
        pts = _random_points(100)
        t = PackedRTree.bulk_load(pts, fanout=8)
        for r, __ in pts:
            assert contains(t.bbox(), r)

    def test_window_query_matches_brute_force(self):
        pts = _random_points(400)
        t = PackedRTree.bulk_load(pts, fanout=8)
        rng = random.Random(13)
        for __ in range(30):
            q = rect(rng.randrange(2000), rng.randrange(2000),
                     rng.randrange(2000), rng.randrange(2000))
            expect = sorted(v for r, v in pts if intersects(r, q))
            got = sorted(v for __, v in t.window_query(q))
            assert got == expect

    def test_within_distance_exact(self):
        pts = _random_points(300)
        t = PackedRTree.bulk_load(pts, fanout=8)
        p = point_rect(1000, 1000)
        got = sorted(v for __, v, __d in t.within_distance(p, 150))
        expect = sorted(v for r, v in pts if euclidean(p, r) <= 150)
        assert got == expect

    def test_within_distance_returns_distances(self):
        pts = [(point_rect(0, 0), "origin"), (point_rect(3, 4), "d5")]
        t = PackedRTree.bulk_load(pts, fanout=4)
        out = {v: d for __, v, d in t.within_distance(point_rect(0, 0), 10)}
        assert out["origin"] == 0.0 and out["d5"] == 5.0

    def test_height_logarithmic(self):
        small = PackedRTree.bulk_load(_random_points(16), fanout=4)
        large = PackedRTree.bulk_load(_random_points(4096), fanout=4)
        assert small.height < large.height <= 7

    def test_query_charges_dram(self):
        t = PackedRTree.bulk_load(_random_points(200), fanout=8)
        before = t.events.dram_read_bytes
        t.window_query((0, 0, 2000, 2000))
        assert t.events.dram_read_bytes > before

    @given(st.lists(st.tuples(st.integers(0, 500), st.integers(0, 500)),
                    max_size=150),
           st.integers(0, 500), st.integers(0, 500),
           st.integers(0, 500), st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_property_window_query(self, points, x0, y0, x1, y1):
        entries = [(point_rect(x, y), i) for i, (x, y) in enumerate(points)]
        t = PackedRTree.bulk_load(entries, fanout=4)
        q = rect(x0, y0, x1, y1)
        expect = sorted(i for r, i in entries if intersects(r, q))
        assert sorted(v for __, v in t.window_query(q)) == expect


class TestSpatialJoin:
    def test_overlap_join_matches_brute_force(self):
        a = _random_points(150, seed=14)
        b = _random_points(150, seed=15)
        ta = PackedRTree.bulk_load(a, fanout=8)
        tb = PackedRTree.bulk_load(b, fanout=8)
        got = sorted((va, vb) for __, va, __r, vb in
                     spatial_join(ta, tb, within=30))
        expect = sorted((va, vb) for ra, va in a for rb, vb in b
                        if intersects(expand(ra, 30), rb))
        assert got == expect

    def test_exact_refinement(self):
        a = _random_points(120, seed=16)
        b = _random_points(120, seed=17)
        ta = PackedRTree.bulk_load(a, fanout=8)
        tb = PackedRTree.bulk_load(b, fanout=8)
        got = sorted((va, vb) for __, va, __r, vb in spatial_join(
            ta, tb, within=60,
            exact=lambda p, q: euclidean(p, q) <= 60))
        expect = sorted((va, vb) for ra, va in a for rb, vb in b
                        if euclidean(ra, rb) <= 60)
        assert got == expect

    def test_empty_side_yields_nothing(self):
        t = PackedRTree.bulk_load(_random_points(10))
        empty = PackedRTree.bulk_load([])
        assert spatial_join(t, empty) == []
        assert spatial_join(empty, t) == []

    def test_asymmetric_heights(self):
        big = PackedRTree.bulk_load(_random_points(1000, seed=18), fanout=4)
        small = PackedRTree.bulk_load(_random_points(5, seed=19), fanout=4)
        pairs = spatial_join(small, big, within=100)
        brute = [(va, vb)
                 for ra, va in small.all_entries()
                 for rb, vb in big.all_entries()
                 if intersects(expand(ra, 100), rb)]
        assert len(pairs) == len(brute)


class TestRTreeDataflow:
    def test_window_graph_matches_functional(self):
        pts = _random_points(250, seed=20)
        tree = PackedRTree.bulk_load(pts, fanout=8)
        rd = RTreeDataflow(tree)
        rng = random.Random(21)
        queries = []
        for q in range(12):
            x, y = rng.randrange(1800), rng.randrange(1800)
            queries.append((q, rect(x, y, x + 200, y + 200)))
        g = rd.window_graph(queries)
        run_graph(g)
        got = sorted((r[0], r[2]) for r in g.tile("hits").records)
        expect = sorted((qid, v) for qid, qr in queries
                        for r, v in pts if intersects(r, qr))
        assert got == expect

    def test_divergent_paths_fork(self):
        pts = _random_points(500, seed=22)
        tree = PackedRTree.bulk_load(pts, fanout=4)
        rd = RTreeDataflow(tree)
        g = rd.window_graph([(0, (0, 0, 2000, 2000))])
        run_graph(g)
        # A whole-extent query forks into every subtree.
        assert len(g.tile("hits").records) == 500
