"""Scratchpad-tile pipeline: gather/scatter/RMW ports, conflicts, fusion,
forwarding, and DRAM tile behaviour."""

import pytest

from repro.dataflow import (
    Graph,
    MapTile,
    SinkTile,
    SourceTile,
    run_graph,
)
from repro.errors import GraphError
from repro.memory import (
    DRAM_LATENCY,
    DramMemory,
    DramTile,
    PortConfig,
    ScratchpadMemory,
    ScratchpadTile,
    cas,
    exchange,
    faa,
    store_conditional_reset,
)


def _gather_graph(mem, region, queries):
    g = Graph("gather")
    src = g.add(SourceTile("src", queries))
    spad = g.add(ScratchpadTile("spad", mem, [PortConfig(
        mode="read", region=region, addr=lambda r: r[1],
        combine=lambda r, v: (r[0], v))]))
    sink = g.add(SinkTile("sink"))
    g.connect(src, spad)
    g.connect(spad, sink)
    return g, sink


class TestPortConfig:
    def test_read_requires_combine(self):
        mem = ScratchpadMemory("m")
        r = mem.region("a", 4, 1)
        with pytest.raises(GraphError):
            PortConfig(mode="read", region=r, addr=lambda x: 0)

    def test_write_requires_value(self):
        mem = ScratchpadMemory("m")
        r = mem.region("a", 4, 1)
        with pytest.raises(GraphError):
            PortConfig(mode="write", region=r, addr=lambda x: 0)

    def test_rmw_requires_rmw_and_combine(self):
        mem = ScratchpadMemory("m")
        r = mem.region("a", 4, 1)
        with pytest.raises(GraphError):
            PortConfig(mode="rmw", region=r, addr=lambda x: 0)

    def test_unknown_mode_rejected(self):
        mem = ScratchpadMemory("m")
        r = mem.region("a", 4, 1)
        with pytest.raises(GraphError):
            PortConfig(mode="swizzle", region=r, addr=lambda x: 0)

    def test_max_two_ports(self):
        mem = ScratchpadMemory("m")
        r = mem.region("a", 4, 1)
        cfg = PortConfig(mode="read", region=r, addr=lambda x: 0,
                         combine=lambda r, v: r)
        with pytest.raises(GraphError):
            ScratchpadTile("s", mem, [cfg, cfg, cfg])


class TestGather:
    def test_sparse_gather_values(self):
        mem = ScratchpadMemory("m")
        region = mem.region("data", 64, 1)
        for i in range(64):
            region[i] = i * 10
        queries = [(q, (q * 7) % 64) for q in range(128)]
        g, sink = _gather_graph(mem, region, queries)
        run_graph(g)
        got = {r[0]: r[1] for r in sink.records}
        assert got == {q: ((q * 7) % 64) * 10 for q in range(128)}

    def test_combine_none_kills_thread(self):
        mem = ScratchpadMemory("m")
        region = mem.region("data", 16, 1, fill=0)
        g = Graph("kill")
        src = g.add(SourceTile("src", [(i, i % 16) for i in range(32)]))
        spad = g.add(ScratchpadTile("spad", mem, [PortConfig(
            mode="read", region=region, addr=lambda r: r[1],
            combine=lambda r, v: r if r[0] % 2 == 0 else None)]))
        sink = g.add(SinkTile("sink"))
        g.connect(src, spad)
        g.connect(spad, sink)
        run_graph(g)
        assert len(sink.records) == 16

    def test_bank_conflicts_counted_on_hot_bank(self):
        mem = ScratchpadMemory("m")
        region = mem.region("data", 64, 1, fill=0)
        # All requests to entry 0 -> same bank every cycle.
        queries = [(q, 0) for q in range(64)]
        g, sink = _gather_graph(mem, region, queries)
        stats = run_graph(g)
        assert stats.scratchpads["spad"].bank_conflicts > 0

    def test_conflict_free_when_spread(self):
        mem = ScratchpadMemory("m")
        region = mem.region("data", 64, 1, fill=0)
        queries = [(q, q % 16) for q in range(64)]  # one per bank per vector
        g, sink = _gather_graph(mem, region, queries)
        stats = run_graph(g)
        s = stats.scratchpads["spad"]
        assert s.grants == 64
        assert s.conflict_rate < 0.2


class TestScatterAndRmw:
    def test_scatter_writes_memory(self):
        mem = ScratchpadMemory("m")
        region = mem.region("data", 32, 1, fill=0)
        g = Graph("scatter")
        src = g.add(SourceTile("src", [(i, i * 3) for i in range(32)]))
        spad = g.add(ScratchpadTile("spad", mem, [PortConfig(
            mode="write", region=region, addr=lambda r: r[0],
            value=lambda r: r[1])]))
        g.connect(src, spad)
        run_graph(g)
        assert [region[i] for i in range(32)] == [i * 3 for i in range(32)]

    def test_faa_accumulates_and_returns_old(self):
        mem = ScratchpadMemory("m")
        counter = mem.region("c", 1, 1, fill=0)
        g = Graph("faa")
        src = g.add(SourceTile("src", [(i,) for i in range(100)]))
        spad = g.add(ScratchpadTile("spad", mem, [PortConfig(
            mode="rmw", region=counter, addr=lambda r: 0,
            rmw=faa(), combine=lambda r, old: (r[0], old))]))
        sink = g.add(SinkTile("sink"))
        g.connect(src, spad)
        g.connect(spad, sink)
        run_graph(g)
        assert counter[0] == 100
        # FAA tickets are unique and cover 0..99.
        assert sorted(r[1] for r in sink.records) == list(range(100))

    def test_cas_success_and_failure(self):
        mem = ScratchpadMemory("m")
        cell = mem.region("c", 1, 1, fill=0)
        g = Graph("cas")
        # Two threads CAS 0->own id; exactly one wins.
        src = g.add(SourceTile("src", [(1,), (2,)]))
        spad = g.add(ScratchpadTile("spad", mem, [PortConfig(
            mode="rmw", region=cell, addr=lambda r: 0,
            rmw=cas(expected_of=lambda r: 0, new_of=lambda r: r[0]),
            combine=lambda r, old: (r[0], old))]))
        sink = g.add(SinkTile("sink"))
        g.connect(src, spad)
        g.connect(spad, sink)
        run_graph(g)
        winners = [r for r in sink.records if r[1] == 0]
        assert len(winners) == 1
        assert cell[0] == winners[0][0]

    def test_exchange_returns_old(self):
        mem = ScratchpadMemory("m")
        cell = mem.region("c", 1, 1, fill=7)
        g = Graph("xchg")
        src = g.add(SourceTile("src", [(42,)]))
        spad = g.add(ScratchpadTile("spad", mem, [PortConfig(
            mode="rmw", region=cell, addr=lambda r: 0,
            rmw=exchange(new_of=lambda r: r[0]),
            combine=lambda r, old: (old,))]))
        sink = g.add(SinkTile("sink"))
        g.connect(src, spad)
        g.connect(spad, sink)
        run_graph(g)
        assert sink.records == [(7,)]
        assert cell[0] == 42

    def test_store_conditional_reset(self):
        fn = store_conditional_reset(0)
        new, old = fn(5, None)
        assert (new, old) == (0, 5)

    def test_rmw_forwarding_counted(self):
        mem = ScratchpadMemory("m")
        counter = mem.region("c", 1, 1, fill=0)
        g = Graph("fwd")
        src = g.add(SourceTile("src", [(i,) for i in range(64)]))
        spad = g.add(ScratchpadTile("spad", mem, [PortConfig(
            mode="rmw", region=counter, addr=lambda r: 0,
            rmw=faa(), combine=lambda r, old: (old,))]))
        sink = g.add(SinkTile("sink"))
        g.connect(src, spad)
        g.connect(spad, sink)
        stats = run_graph(g)
        # Back-to-back same-offset RMW exercises the forwarding path.
        assert stats.scratchpads["spad"].rmw_forwards > 0

    def test_dual_port_read_write_same_cycle(self):
        mem = ScratchpadMemory("m")
        region = mem.region("data", 32, 1, fill=5)
        g = Graph("dual")
        rsrc = g.add(SourceTile("rsrc", [(i, i % 32) for i in range(64)]))
        wsrc = g.add(SourceTile("wsrc", [(i % 32, 9) for i in range(64)]))
        spad = g.add(ScratchpadTile("spad", mem, [
            PortConfig(mode="read", region=region, addr=lambda r: r[1],
                       combine=lambda r, v: (r[0], v)),
            PortConfig(mode="write", region=region, addr=lambda r: r[0],
                       value=lambda r: r[1]),
        ]))
        sink = g.add(SinkTile("sink"))
        g.connect(rsrc, spad)
        g.connect(wsrc, spad)
        g.connect(spad, sink, producer_port=0)
        run_graph(g)
        assert len(sink.records) == 64
        assert all(region[i] == 9 for i in range(32))


class TestDramTile:
    def test_latency_dominates_single_request(self):
        dram = DramMemory("d")
        region = dram.region("data", 16, 1, fill=1)
        g = Graph("dram")
        src = g.add(SourceTile("src", [(0, 0)]))
        tile = g.add(DramTile("dram", dram, [PortConfig(
            mode="read", region=region, addr=lambda r: r[1],
            combine=lambda r, v: (r[0], v))]))
        sink = g.add(SinkTile("sink"))
        g.connect(src, tile)
        g.connect(tile, sink)
        stats = run_graph(g)
        assert stats.cycles >= DRAM_LATENCY

    def test_dense_vs_sparse_classification(self):
        dram = DramMemory("d")
        region = dram.region("data", 256, 1, fill=0)
        g = Graph("dram")
        src = g.add(SourceTile("src", [(i, i) for i in range(64)]))
        tile = g.add(DramTile("dram", dram, [PortConfig(
            mode="read", region=region, addr=lambda r: r[1],
            combine=lambda r, v: r)]))
        sink = g.add(SinkTile("sink"))
        g.connect(src, tile)
        g.connect(tile, sink)
        stats = run_graph(g)
        # Sequential addresses should be mostly dense bursts.
        assert stats.dram.dense_bursts > stats.dram.sparse_bursts

    def test_byte_accounting(self):
        dram = DramMemory("d")
        region = dram.region("data", 64, 2, fill=0)
        g = Graph("dram")
        src = g.add(SourceTile("src", [(i,) for i in range(32)]))
        tile = g.add(DramTile("dram", dram, [PortConfig(
            mode="write", region=region, addr=lambda r: r[0],
            value=lambda r: (r[0], r[0]))]))
        g.connect(src, tile)
        stats = run_graph(g)
        assert stats.dram.write_bytes == 32 * 2 * 4
