"""Immutable B-tree: bulk load, range queries (three implementations
cross-validated), and the fork-based dataflow search."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.dataflow import run_graph
from repro.structures import BTreeDataflow, ImmutableBTree


def _brute(pairs, lo, hi):
    return sorted((k, v) for k, v in pairs if lo <= k <= hi)


class TestBulkLoad:
    def test_empty_tree(self):
        t = ImmutableBTree.bulk_load([])
        assert len(t) == 0
        assert t.height == 0
        assert t.range_query(0, 100) == []

    def test_single_leaf(self):
        t = ImmutableBTree.bulk_load([(5, "a")])
        assert t.search(5) == ["a"]
        assert t.min_key() == t.max_key() == 5

    def test_leaves_sorted(self):
        t = ImmutableBTree.bulk_load([(3, 0), (1, 1), (2, 2)])
        assert [k for k, __ in t.leaves()] == [1, 2, 3]

    def test_presorted_skips_sort(self):
        pairs = [(i, i) for i in range(100)]
        t = ImmutableBTree.bulk_load(pairs, presorted=True)
        assert t.leaves() == pairs

    def test_height_grows_logarithmically(self):
        t_small = ImmutableBTree.bulk_load([(i, i) for i in range(16)],
                                           fanout=4)
        t_large = ImmutableBTree.bulk_load([(i, i) for i in range(4096)],
                                           fanout=4)
        assert t_small.height < t_large.height <= 6

    def test_fanout_validation(self):
        with pytest.raises(ValueError):
            ImmutableBTree.bulk_load([(1, 1)], fanout=1)

    def test_duplicate_keys_kept(self):
        t = ImmutableBTree.bulk_load([(1, "a"), (1, "b")])
        assert sorted(t.search(1)) == ["a", "b"]

    def test_build_charges_dram_writes(self):
        t = ImmutableBTree.bulk_load([(i, i) for i in range(1000)])
        assert t.events.dram_write_bytes > 1000 * 8


class TestRangeQueries:
    def _tree(self, n=1000, key_space=2000, fanout=8, seed=3):
        rng = random.Random(seed)
        pairs = [(rng.randrange(key_space), i) for i in range(n)]
        return pairs, ImmutableBTree.bulk_load(pairs, fanout=fanout)

    def test_matches_brute_force(self):
        pairs, t = self._tree()
        rng = random.Random(4)
        for __ in range(40):
            lo = rng.randrange(2100)
            hi = lo + rng.randrange(400)
            assert sorted(t.range_query(lo, hi)) == _brute(pairs, lo, hi)

    def test_level_descent_matches_bisect(self):
        pairs, t = self._tree(fanout=4)
        rng = random.Random(5)
        for __ in range(40):
            lo = rng.randrange(2100)
            hi = lo + rng.randrange(300)
            assert sorted(t.search_levels(lo, hi)) == sorted(
                t.range_query(lo, hi))

    def test_results_in_key_order(self):
        __, t = self._tree()
        out = t.range_query(0, 2000)
        assert [k for k, __ in out] == sorted(k for k, __ in out)

    def test_empty_range(self):
        __, t = self._tree()
        assert t.range_query(50, 40) == []

    def test_probe_charges_height_gathers(self):
        __, t = self._tree(n=4096, fanout=4)
        before = t.events.dram_sparse_accesses
        t.range_query(10, 10)
        assert t.events.dram_sparse_accesses - before == t.height

    @given(st.lists(st.tuples(st.integers(0, 300), st.integers()),
                    max_size=300),
           st.integers(0, 300), st.integers(0, 300))
    @settings(max_examples=25, deadline=None)
    def test_property_range_query(self, pairs, a, b):
        lo, hi = min(a, b), max(a, b)
        t = ImmutableBTree.bulk_load(pairs, fanout=4)
        assert sorted(t.range_query(lo, hi)) == _brute(pairs, lo, hi)


class TestDataflowSearch:
    def _setup(self, n=600, fanout=8, seed=6):
        rng = random.Random(seed)
        pairs = [(rng.randrange(1200), i) for i in range(n)]
        tree = ImmutableBTree.bulk_load(pairs, fanout=fanout)
        return pairs, BTreeDataflow(tree)

    def test_flatten_matches_tree(self):
        pairs, bd = self._setup()
        rng = random.Random(7)
        for __ in range(30):
            lo = rng.randrange(1300)
            hi = lo + rng.randrange(200)
            assert bd.search_flat(lo, hi) == _brute(pairs, lo, hi)

    def test_cycle_sim_matches_brute_force(self):
        pairs, bd = self._setup(n=300)
        rng = random.Random(8)
        queries = []
        for q in range(15):
            lo = rng.randrange(1300)
            queries.append((q, lo, lo + rng.randrange(150)))
        g = bd.search_graph(queries)
        run_graph(g)
        got = sorted(g.tile("hits").records)
        expect = sorted((q, k, v) for q, lo, hi in queries
                        for k, v in pairs if lo <= k <= hi)
        assert got == expect

    def test_point_queries(self):
        pairs, bd = self._setup(n=200)
        key = pairs[0][0]
        g = bd.search_graph([(0, key, key)])
        run_graph(g)
        got = sorted(v for __, k, v in g.tile("hits").records)
        assert got == sorted(v for k, v in pairs if k == key)

    def test_forking_walks_multiple_paths(self):
        # A wide range forces the thread to fork across many children.
        pairs, bd = self._setup(n=500, fanout=4)
        g = bd.search_graph([(0, 0, 1200)])
        stats = run_graph(g)
        assert len(g.tile("hits").records) == 500
        # The descend fork tile must have emitted more threads than it
        # consumed (fan-out > 1 somewhere).
        assert g.tile("descend").stats.records_out > bd.tree.height

    def test_single_node_tree_dataflow(self):
        bd = BTreeDataflow(ImmutableBTree.bulk_load([(1, "x")], fanout=4))
        g = bd.search_graph([(0, 0, 5)])
        run_graph(g)
        assert g.tile("hits").records == [(0, 1, "x")]
