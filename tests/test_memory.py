"""Scratchpad storage, issue queues, and the matching allocator."""

import pytest

from repro.errors import CapacityError
from repro.memory import (
    BANKS,
    CAPACITY_WORDS,
    Allocator,
    DEPTH_AUROCHS,
    DEPTH_CAPSTAN,
    IssueQueue,
    Request,
    ScratchpadMemory,
)


class TestRegions:
    def test_region_allocation(self):
        mem = ScratchpadMemory("m")
        r = mem.region("a", 100, 2)
        assert len(r) == 100
        assert r.words() == 200

    def test_capacity_enforced(self):
        mem = ScratchpadMemory("m", capacity_words=100)
        mem.region("a", 50, 1)
        with pytest.raises(CapacityError):
            mem.region("b", 51, 1)

    def test_duplicate_region_rejected(self):
        mem = ScratchpadMemory("m")
        mem.region("a", 10, 1)
        with pytest.raises(CapacityError):
            mem.region("a", 10, 1)

    def test_free_words_tracks_usage(self):
        mem = ScratchpadMemory("m", capacity_words=100)
        mem.region("a", 30, 2)
        assert mem.free_words == 40
        assert mem.fits(40) and not mem.fits(41)

    def test_fill_value(self):
        mem = ScratchpadMemory("m")
        r = mem.region("a", 5, 1, fill=-1)
        assert all(r[i] == -1 for i in range(5))

    def test_read_write(self):
        mem = ScratchpadMemory("m")
        r = mem.region("a", 10, 1)
        r[3] = 42
        assert r[3] == 42

    def test_bank_interleaving(self):
        mem = ScratchpadMemory("m")
        r = mem.region("a", 64, 1)
        banks = [r.bank_of(i) for i in range(BANKS)]
        assert sorted(banks) == list(range(BANKS))  # consecutive -> distinct

    def test_bank_offset_by_base(self):
        mem = ScratchpadMemory("m")
        a = mem.region("a", 3, 1)
        b = mem.region("b", 3, 1)
        assert b.bank_of(0) == (a.bank_of(0) + 3) % BANKS

    def test_default_capacity_is_256kib(self):
        assert CAPACITY_WORDS == 256 * 1024 // 4

    def test_snapshot_copies(self):
        mem = ScratchpadMemory("m")
        r = mem.region("a", 3, 1, fill=0)
        snap = r.snapshot()
        r[0] = 9
        assert snap[0] == 0


class TestIssueQueue:
    def test_aurochs_half_depth_of_capstan(self):
        # §III-B: "our issue queues are half as deep as Capstan's".
        assert DEPTH_AUROCHS * 2 == DEPTH_CAPSTAN

    def test_push_until_full(self):
        q = IssueQueue(depth=2)
        q.push(Request(0, 0, None))
        q.push(Request(1, 1, None))
        assert not q.has_room()

    def test_aurochs_grant_frees_slot_immediately(self):
        # Invalidate-on-grant: the granted slot frees even if it is not
        # the queue head.
        q = IssueQueue(depth=2, in_order_dequeue=False)
        first = Request(0, 0, None)
        second = Request(1, 1, None)
        q.push(first)
        q.push(second)
        q.grant(second)
        assert q.has_room()
        assert q.bids() == [first]

    def test_capstan_head_of_line_blocking(self):
        # In-order dequeue: granting a non-head request does NOT free the
        # slot while the head is still pending.
        q = IssueQueue(depth=2, in_order_dequeue=True)
        head = Request(0, 0, None)
        tail = Request(1, 1, None)
        q.push(head)
        q.push(tail)
        q.grant(tail)
        assert not q.has_room()      # blocked behind the straggler head
        q.grant(head)
        assert q.occupancy() == 0    # head grant drains both

    def test_granted_requests_do_not_rebid(self):
        q = IssueQueue(depth=4, in_order_dequeue=True)
        r = Request(2, 2, None)
        q.push(r)
        q.grant(r)
        assert r not in q.bids()


class TestAllocator:
    def _queues(self, banks_per_lane):
        queues = [IssueQueue() for __ in banks_per_lane]
        for lane, banks in enumerate(banks_per_lane):
            for b in banks:
                queues[lane].push(Request(b, b, None))
        return queues

    def test_at_most_one_grant_per_bank(self):
        queues = self._queues([[0], [0], [0], [0]])
        grants, conflicts, __ = Allocator(4).allocate(queues)
        assert len(grants) == 1
        assert conflicts == 3

    def test_at_most_one_grant_per_lane(self):
        queues = self._queues([[0, 1, 2, 3]])
        grants, conflicts, __ = Allocator(4).allocate(queues)
        assert len(grants) == 1

    def test_conflict_free_bids_all_granted(self):
        queues = self._queues([[0], [1], [2], [3]])
        grants, conflicts, __ = Allocator(4).allocate(queues)
        assert len(grants) == 4
        assert conflicts == 0

    def test_reordering_extracts_parallelism(self):
        # Two lanes both want bank 0 at the head, but deeper requests can
        # be scheduled out of order — the whole point of §III-B.
        queues = self._queues([[0, 1], [0, 2]])
        grants, __, considered = Allocator(4).allocate(queues)
        assert len(grants) == 2
        assert considered >= 3

    def test_busy_banks_excluded(self):
        queues = self._queues([[0], [1]])
        grants, conflicts, __ = Allocator(4).allocate(
            queues, busy_banks=frozenset({0}))
        assert [r.bank for __, r in grants] == [1]
        assert conflicts == 1

    def test_considers_all_slots(self):
        # 2 lanes x 3 requests = 6 considered (the 128-requests/cycle
        # readout of §III-B, scaled down).
        queues = self._queues([[0, 1, 2], [3, 4, 5]])
        __, __, considered = Allocator(8).allocate(queues)
        assert considered == 6

    def test_rotating_priority_is_fair(self):
        # With persistent contention, both lanes should win over time.
        alloc = Allocator(2)
        wins = [0, 0]
        for __ in range(10):
            queues = self._queues([[0], [0]])
            grants, __unused, __u2 = alloc.allocate(queues)
            for lane, __r in grants:
                wins[lane] += 1
        assert wins[0] > 0 and wins[1] > 0
