"""Lowered (on-fabric) operator execution vs the functional operators."""

import random

import pytest

from repro.db import Table
from repro.db.lowering import (
    lower_filter,
    lower_group_count,
    lower_hash_join,
)
from repro.db.operators import hash_group_by, hash_join, scan_filter
from repro.errors import PlanError


def _tables(seed=100, n=80, key_space=20):
    rng = random.Random(seed)
    left = Table.from_columns(
        "l", k=[rng.randrange(key_space) for __ in range(n)],
        lv=list(range(n)))
    right = Table.from_columns(
        "r", k=[rng.randrange(key_space) for __ in range(n)],
        rv=[1000 + i for i in range(n)])
    return left, right


class TestLowerFilter:
    def test_matches_functional_filter(self):
        t = Table.from_columns("t", a=list(range(100)))
        lowered = lower_filter(t, lambda r: r[0] % 3 == 0)
        functional = scan_filter(t, lambda r: r[0] % 3 == 0)
        assert sorted(lowered.table.rows) == sorted(functional.rows)

    def test_reports_cycles(self):
        t = Table.from_columns("t", a=list(range(64)))
        lowered = lower_filter(t, lambda r: True)
        assert lowered.total_cycles > 0
        assert lowered.graphs == 1

    def test_functional_engine_variant(self):
        t = Table.from_columns("t", a=list(range(64)))
        lowered = lower_filter(t, lambda r: r[0] < 32, engine="functional")
        assert len(lowered.table) == 32

    def test_unknown_engine_rejected(self):
        t = Table.from_columns("t", a=[1])
        with pytest.raises(PlanError):
            lower_filter(t, lambda r: True, engine="quantum")


class TestLowerHashJoin:
    def test_matches_functional_join(self):
        left, right = _tables()
        lowered = lower_hash_join(left, right, "k", "k", n_partitions=4)
        functional = hash_join(left, right, "k", "k")
        assert sorted(lowered.table.rows) == sorted(functional.rows)

    def test_functional_engine_matches_cycle_engine(self):
        left, right = _tables(seed=101, n=60)
        a = lower_hash_join(left, right, "k", "k", engine="cycle")
        b = lower_hash_join(left, right, "k", "k", engine="functional")
        assert sorted(a.table.rows) == sorted(b.table.rows)

    def test_phase_accounting(self):
        left, right = _tables(seed=102, n=40)
        lowered = lower_hash_join(left, right, "k", "k", n_partitions=2)
        # 2 partition graphs + (build + probe) per non-empty partition.
        assert lowered.graphs >= 4
        assert lowered.total_cycles > 0

    def test_empty_side(self):
        left, right = _tables(seed=103, n=30)
        empty = right.with_rows([])
        lowered = lower_hash_join(left, empty, "k", "k")
        assert lowered.table.rows == []

    def test_schema_concatenated(self):
        left, right = _tables(seed=104, n=20)
        lowered = lower_hash_join(left, right, "k", "k", prefix="r_")
        assert lowered.table.schema.fields == ("k", "lv", "r_k", "r_rv")

    def test_more_partitions_same_result(self):
        left, right = _tables(seed=105, n=64, key_space=12)
        a = lower_hash_join(left, right, "k", "k", n_partitions=2)
        b = lower_hash_join(left, right, "k", "k", n_partitions=8)
        assert sorted(a.table.rows) == sorted(b.table.rows)


class TestLowerGroupCount:
    def test_matches_hash_group_by(self):
        rng = random.Random(106)
        t = Table.from_columns(
            "t", g=[rng.randrange(10) for __ in range(300)])
        lowered = lower_group_count(t, "g", n_groups=10)
        functional = hash_group_by(t, ["g"], {"count": ("count", None)})
        assert sorted(lowered.table.rows) == sorted(functional.rows)

    def test_faa_contention_still_exact(self):
        # All records in one group: maximal RMW contention, exact count.
        t = Table.from_columns("t", g=[3] * 500)
        lowered = lower_group_count(t, "g", n_groups=8)
        assert lowered.table.rows == [(3, 500)]

    def test_empty_groups_omitted(self):
        t = Table.from_columns("t", g=[0, 0, 5])
        lowered = lower_group_count(t, "g", n_groups=8)
        assert sorted(lowered.table.rows) == [(0, 2), (5, 1)]
