"""The programmatic figure API: series shapes match the paper's claims."""

import pytest

from repro.perf import figures
from repro.perf.params import AUROCHS


class TestFig11a:
    def test_series_aligned(self):
        s = figures.fig11a_join_scaling()
        n = len(s["sizes"])
        assert all(len(s[k]) == n
                   for k in ("aurochs", "gorgon", "cpu", "gpu"))

    def test_all_monotone_in_size(self):
        s = figures.fig11a_join_scaling()
        for k in ("aurochs", "gorgon", "cpu", "gpu"):
            assert all(a < b for a, b in zip(s[k], s[k][1:])), k

    def test_crossover_present(self):
        s = figures.fig11a_join_scaling()
        # Gorgon (sort) wins at the smallest size, loses at the largest.
        assert s["gorgon"][0] < s["aurochs"][0]
        assert s["aurochs"][-1] < s["gorgon"][-1]

    def test_aurochs_dominates_software(self):
        s = figures.fig11a_join_scaling()
        for a, c, g in zip(s["aurochs"], s["cpu"], s["gpu"]):
            assert a < c and a < g


class TestFig11b:
    def test_nlj_is_superlinear(self):
        s = figures.fig11b_spatial_scaling()
        ratio_small = s["gorgon_nlj"][0] / s["aurochs"][0]
        ratio_large = s["gorgon_nlj"][-1] / s["aurochs"][-1]
        assert ratio_large > ratio_small

    def test_presort_gap_grows(self):
        s = figures.fig11b_spatial_scaling()
        assert (s["gorgon_sort"][-1] / s["aurochs"][-1]
                > s["gorgon_sort"][1] / s["aurochs"][1])


class TestFig12:
    def test_saturation_below_dram_bw(self):
        s = figures.fig12_parallel_scaling()
        for k in ("hash_join", "partition", "sort_merge_join"):
            assert s[k][-1] < AUROCHS.dram_bw_bytes
            assert s[k][-1] == pytest.approx(s[k][-2], rel=0.2)

    def test_compute_bound_kernels_keep_scaling(self):
        s = figures.fig12_parallel_scaling()
        assert s["hash_build"][-1] > s["hash_build"][-3]


class TestWarpEfficiency:
    def test_bands(self):
        w = figures.warp_efficiency()
        assert 0.45 < w["build"] < 0.8
        assert 0.3 < w["probe"] < 0.6
        assert w["probe_with_barrier"] < w["probe"]


class TestFig14:
    def test_queries_and_speedups(self, tiny_rideshare):
        q = figures.fig14_queries(tiny_rideshare)
        assert set(q) == {f"q{i}" for i in range(1, 10)}
        for name, row in q.items():
            assert row["aurochs"] > 0 and row["cpu"] > 0 and row["gpu"] > 0
        agg = figures.geomean_speedups(q)
        assert agg["vs_cpu"] > 1
        assert agg["vs_gpu"] > 0
