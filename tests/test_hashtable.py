"""Chained hash table: functional semantics, overflow accounting, and
equivalence between the functional and cycle-simulated dataflow forms."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.dataflow import run_graph
from repro.structures import ChainedHashTable, HashTableDataflow, NODE_WORDS


class TestFunctionalTable:
    def test_probe_finds_all_duplicates(self):
        ht = ChainedHashTable(16)
        ht.build([(5, "a"), (5, "b"), (6, "c")])
        assert sorted(ht.probe(5)) == ["a", "b"]

    def test_probe_miss_is_empty(self):
        ht = ChainedHashTable(16)
        ht.build([(1, "x")])
        assert ht.probe(2) == []

    def test_contains(self):
        ht = ChainedHashTable(16)
        ht.insert(3, "v")
        assert ht.contains(3) and not ht.contains(4)

    def test_len_counts_nodes(self):
        ht = ChainedHashTable(8)
        ht.build([(i, i) for i in range(10)])
        assert len(ht) == 10

    def test_invalid_bucket_count(self):
        with pytest.raises(ValueError):
            ChainedHashTable(0)

    def test_items_roundtrip(self):
        pairs = [(i, i * 2) for i in range(20)]
        ht = ChainedHashTable(8)
        ht.build(pairs)
        assert sorted(ht.items()) == sorted(pairs)

    def test_chain_lengths_sum_to_size(self):
        ht = ChainedHashTable(8)
        ht.build([(i, i) for i in range(50)])
        assert sum(ht.chain_lengths()) == 50

    def test_overflow_accounting(self):
        ht = ChainedHashTable(8, spad_node_capacity=10)
        ht.build([(i, i) for i in range(25)])
        assert ht.overflow_nodes == 15

    def test_overflow_probe_charges_dram(self):
        ht = ChainedHashTable(8, spad_node_capacity=0)
        ht.build([(1, "x")])
        before = ht.events.dram_read_bytes
        ht.probe(1)
        assert ht.events.dram_read_bytes > before

    def test_on_chip_probe_charges_spad(self):
        ht = ChainedHashTable(8)
        ht.build([(1, "x")])
        before = ht.events.spad_reads
        ht.probe(1)
        assert ht.events.spad_reads > before

    def test_rmw_per_insert(self):
        ht = ChainedHashTable(8)
        ht.build([(i, i) for i in range(30)])
        assert ht.events.rmw_ops == 30

    @given(st.lists(st.tuples(st.integers(0, 50), st.integers()),
                    max_size=200))
    @settings(max_examples=25, deadline=None)
    def test_matches_dict_of_lists(self, pairs):
        ht = ChainedHashTable(16)
        ht.build(pairs)
        reference = {}
        for k, v in pairs:
            reference.setdefault(k, []).append(v)
        for k in range(51):
            assert sorted(map(repr, ht.probe(k))) == sorted(
                map(repr, reference.get(k, [])))


class TestDataflowTable:
    def _pairs(self, n, key_space, seed=1):
        rng = random.Random(seed)
        return [(rng.randrange(key_space), 1000 + i) for i in range(n)]

    def test_build_graph_matches_functional(self):
        pairs = self._pairs(80, 24)
        hd = HashTableDataflow(n_buckets=16, spad_node_capacity=128)
        run_graph(hd.build_graph(pairs))
        assert sorted(hd.contents()) == sorted(pairs)

    def test_build_overflow_path(self):
        pairs = self._pairs(60, 20)
        hd = HashTableDataflow(n_buckets=16, spad_node_capacity=20,
                               overflow_capacity=128)
        run_graph(hd.build_graph(pairs))
        assert sorted(hd.contents()) == sorted(pairs)
        # Nodes beyond capacity physically live in the DRAM region.
        assert any(hd.overflow[i] is not None for i in range(40))

    def test_incremental_builds_accumulate(self):
        hd = HashTableDataflow(n_buckets=16, spad_node_capacity=128)
        run_graph(hd.build_graph([(1, "a")]))
        run_graph(hd.build_graph([(1, "b"), (2, "c")]))
        assert sorted(hd.contents()) == [(1, "a"), (1, "b"), (2, "c")]

    def test_probe_emit_all_matches_functional(self):
        pairs = self._pairs(90, 30, seed=2)
        hd = HashTableDataflow(n_buckets=16, spad_node_capacity=64,
                               overflow_capacity=128)
        hd.load(pairs)
        queries = [(q, q % 40) for q in range(80)]
        g = hd.probe_graph(queries, emit_all=True)
        run_graph(g)
        got = sorted((r[0], r[2]) for r in g.tile("hits").records)
        expect = sorted((qid, v) for qid, k in queries
                        for kk, v in pairs if kk == k)
        assert got == expect

    def test_probe_first_match_and_misses(self):
        pairs = [(k, k * 11) for k in range(30)]
        hd = HashTableDataflow(n_buckets=8, spad_node_capacity=64)
        hd.load(pairs)
        g = hd.probe_graph([(q, q) for q in range(40)], emit_all=False)
        run_graph(g)
        hits = {(r[0], r[2]) for r in g.tile("hits").records}
        misses = {r[0] for r in g.tile("misses").records}
        assert hits == {(q, q * 11) for q in range(30)}
        assert misses == set(range(30, 40))

    def test_probe_walks_overflow_chain(self):
        pairs = [(7, i) for i in range(10)]       # one long chain
        hd = HashTableDataflow(n_buckets=4, spad_node_capacity=3,
                               overflow_capacity=32)
        hd.load(pairs)
        g = hd.probe_graph([(0, 7)], emit_all=True)
        run_graph(g)
        assert sorted(r[2] for r in g.tile("hits").records) == list(range(10))

    def test_cas_retries_occur_under_contention(self):
        # Many inserts to one bucket force CAS failures + recirculation.
        pairs = [(3, i) for i in range(40)]
        hd = HashTableDataflow(n_buckets=4, spad_node_capacity=64)
        g = hd.build_graph(pairs)
        run_graph(g)
        assert sorted(v for __, v in hd.contents()) == list(range(40))
        # The retry tile must have seen traffic (CAS failures).
        assert g.tile("retry").stats.records_out > 0

    def test_node_words_constant(self):
        assert NODE_WORDS == 3
