"""Cross-layer integration: cycle-simulated pipelines vs functional
structures on identical data, operator pipelines composed end-to-end, and
the full evaluation flow (query -> trace -> all platform runtimes)."""

import random

import pytest

from repro.baselines import CpuModel, GpuModel
from repro.dataflow import run_graph
from repro.db import ExecutionContext, Table
from repro.db.operators import hash_group_by, hash_join, scan_filter
from repro.perf import CostModel
from repro.perf.energy import energy_joules, platform_power
from repro.structures import (
    BTreeDataflow,
    ChainedHashTable,
    HashTableDataflow,
    ImmutableBTree,
    LsmTree,
    PartitionerDataflow,
    RadixPartitioner,
)
from repro.workloads import QUERIES, run_query


class TestCycleVsFunctional:
    """The cycle-simulated dataflow pipelines and the functional
    implementations must agree record-for-record on the same inputs."""

    def test_hash_table_build_equivalence(self):
        rng = random.Random(60)
        pairs = [(rng.randrange(30), i) for i in range(120)]
        functional = ChainedHashTable(16).build(pairs)
        dataflow = HashTableDataflow(n_buckets=16, spad_node_capacity=64,
                                     overflow_capacity=128)
        run_graph(dataflow.build_graph(pairs))
        assert sorted(functional.items()) == sorted(dataflow.contents())

    def test_hash_table_probe_equivalence(self):
        rng = random.Random(61)
        pairs = [(rng.randrange(25), i) for i in range(100)]
        functional = ChainedHashTable(16).build(pairs)
        dataflow = HashTableDataflow(n_buckets=16, spad_node_capacity=128)
        dataflow.load(pairs)
        queries = [(q, rng.randrange(35)) for q in range(60)]
        g = dataflow.probe_graph(queries, emit_all=True)
        run_graph(g)
        sim_hits = sorted((r[0], r[2]) for r in g.tile("hits").records)
        func_hits = sorted((qid, v) for qid, k in queries
                           for v in functional.probe(k))
        assert sim_hits == func_hits

    def test_partitioner_equivalence(self):
        rng = random.Random(62)
        recs = [(rng.randrange(999), i) for i in range(140)]
        functional = RadixPartitioner(8)
        # The functional partitioner stores the payload it was handed; hand
        # it the same (key, payload) records the dataflow pipeline scatters.
        functional.partition((k, (k, v)) for k, v in recs)
        dataflow = PartitionerDataflow(8, block_size=8, max_blocks=128)
        run_graph(dataflow.build_graph(recs))
        for p in range(8):
            assert (sorted(functional.read_partition(p))
                    == sorted(dataflow.read_partition(p)))

    def test_btree_search_equivalence(self):
        rng = random.Random(63)
        pairs = [(rng.randrange(800), i) for i in range(400)]
        tree = ImmutableBTree.bulk_load(pairs, fanout=8)
        dataflow = BTreeDataflow(tree)
        queries = []
        for q in range(10):
            lo = rng.randrange(900)
            queries.append((q, lo, lo + rng.randrange(120)))
        g = dataflow.search_graph(queries)
        run_graph(g)
        sim = sorted(g.tile("hits").records)
        func = sorted((q, k, v) for q, lo, hi in queries
                      for k, v in tree.range_query(lo, hi))
        assert sim == func


class TestOperatorComposition:
    def test_filter_join_aggregate_pipeline(self):
        rng = random.Random(64)
        orders = Table.from_columns(
            "orders", cust=[rng.randrange(20) for __ in range(300)],
            amount=[rng.randrange(100) for __ in range(300)])
        customers = Table.from_columns(
            "cust", cust=list(range(20)),
            region=[c % 4 for c in range(20)])
        ctx = ExecutionContext()
        big = scan_filter(orders, lambda r: r[1] >= 50, ctx)
        joined = hash_join(big, customers, "cust", "cust", ctx)
        by_region = hash_group_by(joined, ["r_region"],
                                  {"total": ("sum", "amount"),
                                   "n": ("count", None)}, ctx)
        # Reference computation.
        region_of = {c: c % 4 for c in range(20)}
        ref = {}
        for cust, amount in orders.rows:
            if amount >= 50:
                r = region_of[cust]
                tot, n = ref.get(r, (0, 0))
                ref[r] = (tot + amount, n + 1)
        got = {row[0]: (row[1], row[2]) for row in by_region.rows}
        assert got == ref
        assert [t.op for t in ctx.traces] == [
            "filter", "hash_join", "hash_group_by"]

    def test_lsm_feeds_btree_consistency(self):
        lsm = LsmTree(batch_size=32, fanout=8)
        lsm.insert_many((i * 3, i) for i in range(200))
        for tree in lsm.snapshot():
            leaves = tree.leaves()
            assert leaves == sorted(leaves)


class TestFullEvaluationFlow:
    def test_every_query_prices_on_every_platform(self, tiny_rideshare):
        # Per-query Aurochs-vs-CPU wins need workload scale to amortize
        # fixed operator overheads (the benchmarks run at scale); here we
        # check every platform prices every query and the suite-aggregate
        # ordering already favours Aurochs.
        aurochs = CostModel(parallel_streams=8)
        cpu, gpu = CpuModel(), GpuModel()
        total_a = total_c = total_g = 0.0
        for name in QUERIES:
            ctx = ExecutionContext()
            run_query(name, tiny_rideshare, ctx)
            ta = aurochs.query_runtime(ctx)
            tc = cpu.query_runtime(ctx)
            tg = gpu.query_runtime(ctx)
            assert ta > 0 and tc > 0 and tg > 0, name
            total_a += ta
            total_c += tc
            total_g += tg
        assert total_a < total_c
        assert total_a < total_g

    def test_energy_ordering_vs_gpu(self, tiny_rideshare):
        # fig. 14: Aurochs is ~20x more energy-efficient than the GPU.
        aurochs = CostModel(parallel_streams=8)
        gpu = GpuModel()
        total_a = total_g = 0.0
        for name in QUERIES:
            ctx = ExecutionContext()
            run_query(name, tiny_rideshare, ctx)
            total_a += energy_joules(aurochs.query_runtime(ctx),
                                     platform_power("aurochs"))
            total_g += energy_joules(gpu.query_runtime(ctx),
                                     platform_power("gpu"))
        assert total_a < total_g

    def test_trace_events_nonzero_for_join_queries(self, tiny_rideshare):
        ctx = ExecutionContext()
        run_query("q7", tiny_rideshare, ctx)
        assert ctx.events.rmw_ops > 0
        assert ctx.events.dram_read_bytes > 0

    def test_context_summary_renders(self, tiny_rideshare):
        ctx = ExecutionContext()
        run_query("q3", tiny_rideshare, ctx)
        text = ctx.summary()
        assert "containment_join" in text
