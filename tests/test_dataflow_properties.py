"""Property-based invariants of the dataflow engine itself.

Whatever the data and pipeline shape, the threading model guarantees:
records are conserved (filter sides partition the input, maps are 1:1,
forks produce exactly their fan-out), thread order is free but multiset
content is exact, and both engines agree.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.dataflow import (
    FilterTile,
    ForkTile,
    Graph,
    MapTile,
    MergeTile,
    SinkTile,
    SourceTile,
    run_functional,
    run_graph,
)

records = st.lists(st.tuples(st.integers(-1000, 1000)), max_size=120)


class TestConservation:
    @given(records)
    @settings(max_examples=30, deadline=None)
    def test_filter_partitions_input(self, recs):
        g = Graph("p")
        src = g.add(SourceTile("src", recs))
        f = g.add(FilterTile("f", lambda r: r[0] % 3 == 0))
        a, b = g.add(SinkTile("a")), g.add(SinkTile("b"))
        g.connect(src, f)
        g.connect(f, a, producer_port=0)
        g.connect(f, b, producer_port=1)
        run_graph(g)
        assert sorted(a.records + b.records) == sorted(recs)
        assert all(r[0] % 3 == 0 for r in a.records)

    @given(records)
    @settings(max_examples=30, deadline=None)
    def test_map_is_one_to_one(self, recs):
        g = Graph("p")
        src = g.add(SourceTile("src", recs))
        m = g.add(MapTile("m", lambda r: (r[0] * 2,)))
        sink = g.add(SinkTile("s"))
        g.connect(src, m)
        g.connect(m, sink)
        run_graph(g)
        assert sorted(sink.records) == sorted((r[0] * 2,) for r in recs)

    @given(records, st.integers(0, 4))
    @settings(max_examples=30, deadline=None)
    def test_fork_fanout_exact(self, recs, fanout):
        g = Graph("p")
        src = g.add(SourceTile("src", recs))
        f = g.add(ForkTile("f", lambda r: [r] * fanout))
        sink = g.add(SinkTile("s"))
        g.connect(src, f)
        g.connect(f, sink)
        run_graph(g)
        assert len(sink.records) == len(recs) * fanout

    @given(records, records)
    @settings(max_examples=30, deadline=None)
    def test_merge_is_multiset_union(self, a_recs, b_recs):
        g = Graph("p")
        a = g.add(SourceTile("a", a_recs))
        b = g.add(SourceTile("b", b_recs))
        m = g.add(MergeTile("m"))
        sink = g.add(SinkTile("s"))
        g.connect(a, m)
        g.connect(b, m)
        g.connect(m, sink)
        run_graph(g)
        assert sorted(sink.records) == sorted(a_recs + b_recs)


class TestEngineAgreement:
    @given(records, st.integers(0, 6))
    @settings(max_examples=25, deadline=None)
    def test_cycle_and_functional_agree_on_loops(self, recs, max_iters):
        def build():
            g = Graph("loop")
            src = g.add(SourceTile(
                "src", [(r[0], abs(r[0]) % (max_iters + 1)) for r in recs]))
            merge = g.add(MergeTile("merge"))
            cond = g.add(FilterTile("cond", lambda r: r[1] <= 0))
            dec = g.add(MapTile("dec", lambda r: (r[0], r[1] - 1)))
            sink = g.add(SinkTile("sink"))
            g.connect(src, merge)
            g.connect(merge, cond)
            g.connect(cond, sink, producer_port=0)
            g.connect(cond, dec, producer_port=1)
            g.connect(dec, merge, priority=True)
            return g, sink

        g1, s1 = build()
        g2, s2 = build()
        run_graph(g1)
        run_functional(g2)
        assert sorted(s1.records) == sorted(s2.records)

    @given(st.integers(1, 64))
    @settings(max_examples=20, deadline=None)
    def test_throughput_never_exceeds_line_rate(self, n_vectors):
        # A tile can emit at most LANES records per cycle; total cycles
        # must be at least the number of full vectors.
        from repro.dataflow import LANES
        n = n_vectors * LANES
        g = Graph("rate")
        src = g.add(SourceTile("src", [(i,) for i in range(n)]))
        m = g.add(MapTile("m", lambda r: r))
        sink = g.add(SinkTile("s"))
        g.connect(src, m)
        g.connect(m, sink)
        stats = run_graph(g)
        assert stats.cycles >= n_vectors
