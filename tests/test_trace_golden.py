"""Golden-trace regression suite: the tracer's event stream is replayable.

Trace events are emitted only on *transitions* (a tile changing between
firing and a specific stall reason, stream push/pop/close, memory
issue/retire).  Because a tile the event scheduler puts to sleep is
provably frozen — any stream mutation wakes it and internal state only
changes on ticks — the transition stream is **bit-identical** across the
exhaustive and event-driven schedulers, on every graph shape.  These
tests pin that property on four canonical shapes, plus the literal event
tuples of a tiny linear pipeline as a schema regression anchor.
"""

import pytest

from repro.dataflow import (
    Engine,
    FilterTile,
    Graph,
    MapTile,
    SinkTile,
    SourceTile,
)
from repro.observability import Tracer

from tests.test_scheduler_equivalence import (
    _countdown_graph,
    _divergent_fork_graph,
    _dram_gather_graph,
)


def _linear_graph():
    """src -> map -> map -> sink: the simplest latency-bound pipeline."""
    g = Graph("linear")
    src = g.add(SourceTile("src", [(i,) for i in range(96)], rate=8))
    a = g.add(MapTile("stage_a", lambda r: (r[0] + 1,)))
    b = g.add(MapTile("stage_b", lambda r: (r[0] * 2,)))
    sink = g.add(SinkTile("sink"))
    g.connect(src, a)
    g.connect(a, b)
    g.connect(b, sink)
    return g


def _divergent_filter_graph():
    """A filter splitting to two sinks — both ports live, no drops."""
    g = Graph("diverge")
    src = g.add(SourceTile("src", [(i,) for i in range(128)], rate=4))
    f = g.add(FilterTile("split", lambda r: r[0] % 3 == 0))
    hit = g.add(SinkTile("hit"))
    miss = g.add(SinkTile("miss"))
    g.connect(src, f)
    g.connect(f, hit, producer_port=0)
    g.connect(f, miss, producer_port=1)
    return g


GRAPHS = [
    ("linear", _linear_graph),
    ("divergent_filter", _divergent_filter_graph),
    ("cyclic_drain", _countdown_graph),
    ("dram_probe", lambda: _dram_gather_graph(rate=2)),
    ("fork_spill", _divergent_fork_graph),
]


def _traced_run(factory, scheduler):
    tracer = Tracer()
    graph = factory()
    stats = Engine(graph, scheduler=scheduler, tracer=tracer).run()
    return stats, tracer


@pytest.mark.parametrize("name,factory", GRAPHS,
                         ids=[g[0] for g in GRAPHS])
class TestGoldenTraces:
    def test_event_stream_bit_identical(self, name, factory):
        golden_stats, golden = _traced_run(factory, "exhaustive")
        event_stats, event = _traced_run(factory, "event")
        assert event_stats == golden_stats
        assert list(event.events) == list(golden.events)
        assert event.emitted == golden.emitted

    def test_attribution_identical(self, name, factory):
        __, golden = _traced_run(factory, "exhaustive")
        __, event = _traced_run(factory, "event")
        assert event.attribution() == golden.attribution()
        assert event.metrics.snapshot() == golden.metrics.snapshot()

    def test_replay_deterministic(self, name, factory):
        """Two runs of the same scheduler replay the same trace."""
        __, first = _traced_run(factory, "event")
        __, again = _traced_run(factory, "event")
        assert list(first.events) == list(again.events)


#: The full event stream of a 6-record, rate-2 linear pipeline.  This is
#: the schema anchor: if event shapes, ordering, or emission points ever
#: change, this fails loudly and the docs must change with it.
TINY_GOLDEN = [
    (0, "stall", "sink", "starved"),
    (0, "stall", "double", "starved"),
    (0, "push", "a", 1, 2),
    (0, "fire", "src"),
    (1, "pop", "a", 0),
    (1, "fire", "double"),
    (1, "push", "a", 1, 2),
    (2, "pop", "a", 0),
    (2, "push", "a", 1, 2),
    (2, "close", "a"),
    (3, "pop", "a", 0),
    (3, "stall", "src", "starved"),
    (4, "push", "b", 1, 4),
    (5, "pop", "b", 0),
    (5, "fire", "sink"),
    (5, "push", "b", 1, 2),
    (5, "close", "b"),
    (6, "pop", "b", 0),
    (6, "stall", "double", "starved"),
    (7, "stall", "sink", "starved"),
]


def _tiny_graph():
    g = Graph("tiny")
    src = g.add(SourceTile("src", [(i,) for i in range(6)], rate=2))
    m = g.add(MapTile("double", lambda r: (2 * r[0],), latency=2))
    sink = g.add(SinkTile("sink"))
    g.connect(src, m, name="a")
    g.connect(m, sink, name="b")
    return g


@pytest.mark.parametrize("scheduler", ["exhaustive", "event"])
def test_tiny_linear_pinned_literal_trace(scheduler):
    tracer = Tracer()
    graph = _tiny_graph()
    stats = Engine(graph, scheduler=scheduler, tracer=tracer).run()
    assert stats.cycles == 8
    assert graph.tile("sink").records == [(0,), (2,), (4,), (6,), (8,), (10,)]
    assert list(tracer.events) == TINY_GOLDEN


def test_tiny_linear_pinned_attribution():
    __, tracer = _traced_run(_tiny_graph, "event")
    attr = tracer.attribution()
    assert attr["src"] == {"compute": 3, "bank_conflict": 0, "starved": 5,
                           "backpressure": 0, "latency": 0, "dram_wait": 0,
                           "total": 8}
    assert attr["double"]["compute"] == 5
    assert attr["sink"]["compute"] == 2
    for row in attr.values():
        assert row["total"] == 8
