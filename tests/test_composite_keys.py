"""Composite (wide) join keys — §II-B's field-serial key handling at the
operator level."""

import random

import pytest

from repro.db import Table
from repro.db.operators import hash_join, sort_merge_join
from repro.db.operators.join import key_getter


def _tables(seed=130, n=120):
    rng = random.Random(seed)
    left = Table.from_columns(
        "l", a=[rng.randrange(5) for __ in range(n)],
        b=[rng.randrange(5) for __ in range(n)],
        lv=list(range(n)))
    right = Table.from_columns(
        "r", a=[rng.randrange(5) for __ in range(n)],
        b=[rng.randrange(5) for __ in range(n)],
        rv=[1000 + i for i in range(n)])
    return left, right


def _brute(left, right):
    return sorted(l + r for l in left.rows for r in right.rows
                  if (l[0], l[1]) == (r[0], r[1]))


class TestKeyGetter:
    def test_single_field(self):
        t = Table.from_columns("t", a=[1], b=[2])
        assert key_getter(t, "b")((1, 2)) == 2

    def test_composite_tuple(self):
        t = Table.from_columns("t", a=[1], b=[2], c=[3])
        assert key_getter(t, ("c", "a"))((1, 2, 3)) == (3, 1)

    def test_unknown_field_raises(self):
        from repro.errors import SchemaError
        t = Table.from_columns("t", a=[1])
        with pytest.raises(SchemaError):
            key_getter(t, ("a", "zz"))


class TestCompositeJoins:
    def test_hash_join_composite(self):
        left, right = _tables()
        out = hash_join(left, right, ("a", "b"), ("a", "b"))
        assert sorted(out.rows) == _brute(left, right)

    def test_sort_merge_join_composite(self):
        left, right = _tables(seed=131)
        out = sort_merge_join(left, right, ("a", "b"), ("a", "b"))
        assert sorted(out.rows) == _brute(left, right)

    def test_hash_equals_sort_merge_composite(self):
        left, right = _tables(seed=132)
        hj = hash_join(left, right, ("a", "b"), ("a", "b"))
        smj = sort_merge_join(left, right, ("a", "b"), ("a", "b"))
        assert sorted(hj.rows) == sorted(smj.rows)

    def test_composite_stricter_than_single(self):
        left, right = _tables(seed=133)
        single = hash_join(left, right, "a", "a")
        composite = hash_join(left, right, ("a", "b"), ("a", "b"))
        assert len(composite) <= len(single)

    def test_cross_field_composite(self):
        # Keys need not use the same field names on both sides.
        left = Table.from_columns("l", x=[1, 2], y=[10, 20])
        right = Table.from_columns("r", p=[1, 2], q=[10, 99])
        out = hash_join(left, right, ("x", "y"), ("p", "q"))
        assert out.rows == [(1, 10, 1, 10)]
