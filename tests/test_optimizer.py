"""Cost-based algorithm selection: the fig. 11a crossover as a planner
decision."""

import random

import pytest

from repro.db import Table
from repro.db.optimizer import JoinChoice, Optimizer
from repro.db.operators import hash_join


class TestJoinChoice:
    def test_sort_merge_chosen_for_small_tables(self):
        choice = Optimizer().choose_join(10 ** 4, 10 ** 4)
        assert choice.algorithm == "sort_merge"

    def test_hash_chosen_for_large_tables(self):
        choice = Optimizer().choose_join(10 ** 8, 10 ** 8)
        assert choice.algorithm == "hash"

    def test_crossover_in_plausible_band(self):
        # fig. 11a's lines cross somewhere in the millions of rows.
        size = Optimizer().crossover_size()
        assert 10 ** 5 < size < 10 ** 8

    def test_presorted_inputs_favor_sort_merge(self):
        n = 10 ** 8
        plain = Optimizer().choose_join(n, n)
        presorted = Optimizer(presorted_left=True,
                              presorted_right=True).choose_join(n, n)
        # §II-A: sort-merge wins "if data is pre-sorted".
        assert plain.algorithm == "hash"
        assert presorted.algorithm == "sort_merge"

    def test_advantage_at_least_one(self):
        for n in (10 ** 4, 10 ** 6, 10 ** 8):
            assert Optimizer().choose_join(n, n).advantage >= 1.0

    def test_execute_join_matches_reference(self):
        rng = random.Random(110)
        left = Table.from_columns(
            "l", k=[rng.randrange(12) for __ in range(60)])
        right = Table.from_columns(
            "r", k=[rng.randrange(12) for __ in range(60)])
        out = Optimizer().execute_join(left, right, "k", "k")
        ref = hash_join(left, right, "k", "k")
        assert sorted(out.rows) == sorted(ref.rows)


class TestAccessPath:
    def test_index_for_selective_predicates(self):
        assert Optimizer().choose_range_access(10 ** 8, 1e-6) == "index"

    def test_scan_for_unselective_predicates(self):
        assert Optimizer().choose_range_access(10 ** 6, 0.9) == "scan"

    def test_selectivity_validated(self):
        with pytest.raises(ValueError):
            Optimizer().choose_range_access(1000, 1.5)

    def test_monotone_in_selectivity(self):
        opt = Optimizer()
        picks = [opt.choose_range_access(10 ** 7, s)
                 for s in (1e-7, 1e-4, 1e-2, 0.5, 1.0)]
        # Once a scan wins, higher selectivity keeps it winning.
        first_scan = picks.index("scan") if "scan" in picks else len(picks)
        assert all(p == "scan" for p in picks[first_scan:])
