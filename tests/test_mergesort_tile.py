"""The sorted-merge tile and the spatial merge tree (Gorgon's sort
kernel on the fabric)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.dataflow import Graph, SinkTile, SourceTile, run_graph
from repro.dataflow.mergesort import SortedMergeTile, merge_sort_graph


def _merge_two(a, b):
    g = Graph("m2")
    sa = g.add(SourceTile("a", [(v,) for v in a]))
    sb = g.add(SourceTile("b", [(v,) for v in b]))
    m = g.add(SortedMergeTile("m", key=lambda r: r[0]))
    sink = g.add(SinkTile("out"))
    g.connect(sa, m)
    g.connect(sb, m)
    g.connect(m, sink)
    run_graph(g)
    return [r[0] for r in sink.records]


class TestSortedMergeTile:
    def test_merges_in_order(self):
        out = _merge_two([1, 3, 5, 7], [2, 4, 6, 8])
        assert out == list(range(1, 9))

    def test_uneven_lengths(self):
        out = _merge_two([5], list(range(20)))
        assert out == sorted([5] + list(range(20)))

    def test_one_empty_side(self):
        assert _merge_two([], [1, 2, 3]) == [1, 2, 3]
        assert _merge_two([1, 2, 3], []) == [1, 2, 3]

    def test_duplicates_preserved(self):
        out = _merge_two([1, 1, 2], [1, 2, 2])
        assert out == [1, 1, 1, 2, 2, 2]

    def test_large_streams(self):
        rng = random.Random(170)
        a = sorted(rng.randrange(10_000) for __ in range(1000))
        b = sorted(rng.randrange(10_000) for __ in range(1000))
        assert _merge_two(a, b) == sorted(a + b)

    @given(st.lists(st.integers(), max_size=100),
           st.lists(st.integers(), max_size=100))
    @settings(max_examples=25, deadline=None)
    def test_property_merge(self, a, b):
        assert _merge_two(sorted(a), sorted(b)) == sorted(a + b)


class TestMergeTree:
    def _runs(self, n_runs, run_len, seed=171):
        rng = random.Random(seed)
        return [sorted((rng.randrange(100_000),) for __ in range(run_len))
                for __ in range(n_runs)]

    def test_binary_tree_merges_all_runs(self):
        runs = self._runs(8, 64)
        g = merge_sort_graph("tree", runs, key=lambda r: r[0])
        run_graph(g)
        out = [r[0] for r in g.tile("out").records]
        assert out == sorted(v for run in runs for v, in run)

    def test_odd_run_count(self):
        runs = self._runs(5, 32, seed=172)
        g = merge_sort_graph("tree", runs, key=lambda r: r[0])
        run_graph(g)
        out = [r[0] for r in g.tile("out").records]
        assert out == sorted(v for run in runs for v, in run)

    def test_single_run_passthrough(self):
        runs = self._runs(1, 16, seed=173)
        g = merge_sort_graph("tree", runs, key=lambda r: r[0])
        run_graph(g)
        assert len(g.tile("out").records) == 16

    def test_tree_depth_is_logarithmic(self):
        runs = self._runs(8, 4)
        g = merge_sort_graph("tree", runs, key=lambda r: r[0])
        merges = [t for t in g.tiles if isinstance(t, SortedMergeTile)]
        assert len(merges) == 7  # 4 + 2 + 1

    def test_pipelined_throughput(self):
        # The whole tree pipelines: total cycles is far below
        # (records x tree depth).
        runs = self._runs(4, 256, seed=174)
        g = merge_sort_graph("tree", runs, key=lambda r: r[0])
        stats = run_graph(g)
        assert stats.cycles < 4 * 256
