"""Schema-tracked pipeline builder: named-field stage declarations that
compile to the same tile graphs the hand-wired kernels use."""

import pytest

from repro.dataflow import run_graph
from repro.dataflow.builder import PipelineBuilder
from repro.errors import GraphError, SchemaError


class TestLinearPipelines:
    def test_map_select_sink(self):
        b = PipelineBuilder("p")
        pipe = b.source("src", ["a", "b"], [(i, i * 2) for i in range(40)])
        pipe = pipe.map("sum", lambda r: {"a": r["a"], "b": r["b"],
                                          "s": r["a"] + r["b"]},
                        out_fields=["a", "b", "s"])
        pipe = pipe.select("proj", "s")
        pipe.sink("out")
        run_graph(b.graph)
        got = sorted(r[0] for r in b.results("out"))
        assert got == sorted(3 * i for i in range(40))

    def test_schema_tracked_through_stages(self):
        b = PipelineBuilder("p")
        pipe = b.source("src", ["x"], [(1,)])
        pipe = pipe.stamp("st", "ticket")
        assert pipe.schema.fields == ("x", "ticket")

    def test_map_kills_with_none(self):
        b = PipelineBuilder("p")
        pipe = b.source("src", ["x"], [(i,) for i in range(10)])
        pipe = pipe.map("keep_even",
                        lambda r: r if r["x"] % 2 == 0 else None)
        pipe.sink("out")
        run_graph(b.graph)
        assert sorted(r[0] for r in b.results("out")) == [0, 2, 4, 6, 8]

    def test_source_validates_rows(self):
        b = PipelineBuilder("p")
        with pytest.raises(SchemaError):
            b.source("src", ["a", "b"], [(1,)])

    def test_select_unknown_field_fails_at_build(self):
        b = PipelineBuilder("p")
        pipe = b.source("src", ["a"], [(1,)])
        with pytest.raises(SchemaError):
            pipe.select("bad", "zz")

    def test_map_output_schema_enforced(self):
        b = PipelineBuilder("p")
        pipe = b.source("src", ["a"], [(1,)])
        pipe = pipe.map("wrong", lambda r: {"nope": 1},
                        out_fields=["expected"])
        pipe.sink("out")
        with pytest.raises(SchemaError):
            run_graph(b.graph)


class TestBranchingAndLoops:
    def test_where_splits(self):
        b = PipelineBuilder("p")
        pipe = b.source("src", ["x"], [(i,) for i in range(20)])
        small, large = pipe.where("split", lambda r: r["x"] < 5)
        small.sink("small")
        large.sink("large")
        run_graph(b.graph)
        assert len(b.results("small")) == 5
        assert len(b.results("large")) == 15

    def test_drop_side(self):
        b = PipelineBuilder("p")
        pipe = b.source("src", ["x"], [(i,) for i in range(20)])
        keep, toss = pipe.where("split", lambda r: r["x"] % 4 == 0)
        keep.sink("out")
        toss.drop()
        run_graph(b.graph)
        assert sorted(r[0] for r in b.results("out")) == [0, 4, 8, 12, 16]

    def test_fork_spawns_children(self):
        b = PipelineBuilder("p")
        pipe = b.source("src", ["n"], [(3,), (2,)])
        pipe = pipe.fork("children",
                         lambda r: [{"n": r["n"], "i": i}
                                    for i in range(r["n"])],
                         out_fields=["n", "i"])
        pipe.sink("out")
        run_graph(b.graph)
        assert len(b.results("out")) == 5

    def test_countdown_loop(self):
        # fig. 5a's while-loop as builder stages.
        b = PipelineBuilder("p")
        pipe = b.source("src", ["id", "n"],
                        [(i, i % 6) for i in range(50)])
        loop = pipe.loop("entry")
        done, working = loop.body.where("test", lambda r: r["n"] <= 0)
        done.sink("out")
        dec = working.map("dec", lambda r: {"id": r["id"],
                                            "n": r["n"] - 1})
        loop.continue_with(dec)
        run_graph(b.graph)
        assert len(b.results("out")) == 50

    def test_loop_schema_mismatch_rejected(self):
        b = PipelineBuilder("p")
        pipe = b.source("src", ["id", "n"], [(0, 1)])
        loop = pipe.loop("entry")
        __, working = loop.body.where("test", lambda r: r["n"] <= 0)
        bad = working.select("oops", "id")   # schema no longer matches
        with pytest.raises(GraphError):
            loop.continue_with(bad)

    def test_results_as_dicts_unsupported_hint(self):
        b = PipelineBuilder("p")
        pipe = b.source("src", ["x"], [(1,)])
        pipe.sink("out")
        run_graph(b.graph)
        with pytest.raises(GraphError):
            b.results("out", as_dicts=True)
