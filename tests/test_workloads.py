"""Rideshare workload generator (Table 2) and queries Q1-Q9 (fig. 13):
generator invariants and per-query semantic checks against brute-force
references."""

import math

import pytest

from repro.db import ExecutionContext
from repro.workloads import (
    DAY,
    GRID,
    KM,
    MINUTE,
    NOW,
    QUERIES,
    RideshareConfig,
    generate,
    run_query,
)


class TestGenerator:
    def test_requested_sizes(self, tiny_rideshare):
        sizes = tiny_rideshare.sizes()
        assert sizes["driver"] == 100
        assert sizes["ride"] == 1500
        assert sizes["rideReq"] == 250

    def test_deterministic_with_seed(self):
        cfg = RideshareConfig(n_drivers=10, n_riders=10, n_locations=4,
                              n_rides=50, n_ride_reqs=10, n_driver_status=10)
        a, b = generate(cfg), generate(cfg)
        assert a["ride"].rows == b["ride"].rows

    def test_coordinates_on_grid(self, tiny_rideshare):
        for row in tiny_rideshare["ride"].rows:
            sx = tiny_rideshare["ride"].schema.get(row, "start_x")
            sy = tiny_rideshare["ride"].schema.get(row, "start_y")
            assert 0 <= sx < GRID and 0 <= sy < GRID

    def test_ride_times_within_history(self, tiny_rideshare):
        times = tiny_rideshare["ride"].column("starttime")
        horizon = tiny_rideshare.config.history_days * DAY
        assert all(NOW - horizon <= t <= NOW for t in times)

    def test_locations_tile_the_grid(self, tiny_rideshare):
        loc = tiny_rideshare["location"]
        for row in loc.rows:
            __, x0, y0, x1, y1 = row
            assert 0 <= x0 <= x1 < GRID and 0 <= y0 <= y1 < GRID

    def test_location_zero_is_busy(self, tiny_rideshare):
        # The generator promotes a hotspot cell to locationId 0 so the
        # fig. 13 queries that filter on it are non-degenerate.
        loc0 = tiny_rideshare["location"].rows[0]
        reqs = tiny_rideshare["rideReq"]
        inside = sum(1 for r in reqs.rows
                     if loc0[1] <= r[2] <= loc0[3]
                     and loc0[2] <= r[3] <= loc0[4])
        assert inside > 0

    def test_foreign_keys_valid(self, tiny_rideshare):
        n_drivers = len(tiny_rideshare["driver"])
        n_riders = len(tiny_rideshare["rider"])
        for row in tiny_rideshare["ride"].rows:
            assert 0 <= row[1] < n_riders
            assert 0 <= row[2] < n_drivers

    def test_scaled_config(self):
        cfg = RideshareConfig().scaled(0.1)
        assert cfg.n_rides == RideshareConfig().n_rides // 10

    def test_paper_scale_matches_table2_magnitude(self):
        cfg = RideshareConfig.paper_scale()
        assert cfg.n_rides == 1_000_000
        assert cfg.n_riders == 100_000


class TestQueries:
    def test_all_queries_run_and_trace(self, tiny_rideshare):
        for name in QUERIES:
            ctx = ExecutionContext()
            out = run_query(name, tiny_rideshare, ctx)
            assert out is not None
            assert len(ctx.traces) >= 1, name

    def test_q1_counts_match_brute_force(self, tiny_rideshare):
        out = run_query("q1", tiny_rideshare)
        req = tiny_rideshare["rideReq"]
        ds = tiny_rideshare["driverStatus"]
        drv = tiny_rideshare["driver"]
        seats = {r[0]: r[1] for r in drv.rows}
        counts = {}
        for q in req.rows:
            for s in ds.rows:
                if s[4] < NOW - 5 * DAY:
                    continue
                if math.hypot(q[2] - s[2], q[3] - s[3]) <= KM \
                        and q[4] <= seats[s[1]]:
                    counts[s[1]] = counts.get(s[1], 0) + 1
        got = {r[0]: r[1] for r in out.rows}
        assert got == counts

    def test_q2_counts_sum_to_loc0_requests(self, tiny_rideshare):
        out = run_query("q2", tiny_rideshare)
        loc0 = tiny_rideshare["location"].rows[0]
        expect = sum(1 for r in tiny_rideshare["rideReq"].rows
                     if loc0[1] <= r[2] <= loc0[3]
                     and loc0[2] <= r[3] <= loc0[4])
        assert sum(r[-1] for r in out.rows) == expect

    def test_q2_sorted_descending(self, tiny_rideshare):
        counts = run_query("q2", tiny_rideshare).column("rideCount")
        assert counts == sorted(counts, reverse=True)

    def test_q3_recency_filter(self, tiny_rideshare):
        out = run_query("q3", tiny_rideshare)
        recent = [r for r in tiny_rideshare["rideReq"].rows
                  if r[5] > NOW - MINUTE]
        assert sum(r[-1] for r in out.rows) <= len(recent)

    def test_q4_rows_are_recent_and_local(self, tiny_rideshare):
        out = run_query("q4", tiny_rideshare)
        ride = tiny_rideshare["ride"]
        by_id = {r[0]: r for r in ride.rows}
        loc0 = tiny_rideshare["location"].rows[0]
        for row in out.rows:
            src = by_id[row[0]]
            assert src[7] > NOW - 5 * DAY
            assert loc0[1] <= src[3] <= loc0[3]

    def test_q5_row_per_status_with_prediction(self, tiny_rideshare):
        out = run_query("q5", tiny_rideshare)
        assert len(out) == len(tiny_rideshare["driverStatus"])
        assert "predicted" in out.schema

    def test_q6_demand_supply_non_negative(self, tiny_rideshare):
        out = run_query("q6", tiny_rideshare)
        di = out.col_index("demand")
        si = out.col_index("s_supply")
        assert all(r[di] > 0 and r[si] > 0 for r in out.rows)
        assert "surge" in out.schema

    def test_q7_one_row_per_active_rider(self, tiny_rideshare):
        out = run_query("q7", tiny_rideshare)
        riders = {r[1] for r in tiny_rideshare["ride"].rows
                  if r[7] > NOW - 30 * DAY}
        assert len(out) == len(riders)
        pi = out.col_index("churn_p")
        assert all(0.0 <= r[pi] <= 1.0 for r in out.rows)

    def test_q8_segments_valid(self, tiny_rideshare):
        out = run_query("q8", tiny_rideshare)
        si = out.col_index("segment")
        assert all(0 <= r[si] < 4 for r in out.rows)

    def test_q9_nearest_sorted_and_limited(self, tiny_rideshare):
        out = run_query("q9", tiny_rideshare)
        assert len(out) <= 100
        dists = out.column("dist")
        assert dists == sorted(dists)
        assert all(d <= KM for d in dists)

    def test_registry_metadata(self):
        assert set(QUERIES) == {f"q{i}" for i in range(1, 10)}
        for qd in QUERIES.values():
            assert qd.description
