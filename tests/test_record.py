"""Schema and record representation tests."""

import pytest
from hypothesis import given, strategies as st

from repro.dataflow import FIELD_BITS, LANES, Schema, as_i32, as_u32
from repro.errors import SchemaError


class TestSchemaBasics:
    def test_fields_preserved_in_order(self):
        s = Schema(["key", "payload", "next"])
        assert s.fields == ("key", "payload", "next")

    def test_len(self):
        assert len(Schema(["a", "b"])) == 2

    def test_index_lookup(self):
        s = Schema(["a", "b", "c"])
        assert s.index("b") == 1

    def test_index_missing_raises(self):
        with pytest.raises(SchemaError):
            Schema(["a"]).index("z")

    def test_duplicate_fields_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["a", "a"])

    def test_contains(self):
        s = Schema(["a", "b"])
        assert "a" in s and "z" not in s

    def test_indices_multi(self):
        s = Schema(["a", "b", "c"])
        assert s.indices(["c", "a"]) == (2, 0)

    def test_equality_and_hash(self):
        assert Schema(["a", "b"]) == Schema(["a", "b"])
        assert Schema(["a"]) != Schema(["b"])
        assert hash(Schema(["a"])) == hash(Schema(["a"]))


class TestSchemaDerivation:
    def test_extend_appends(self):
        s = Schema(["a"]).extend("b", "c")
        assert s.fields == ("a", "b", "c")

    def test_drop_removes(self):
        s = Schema(["a", "b", "c"]).drop("b")
        assert s.fields == ("a", "c")

    def test_drop_missing_raises(self):
        with pytest.raises(SchemaError):
            Schema(["a"]).drop("b")

    def test_select_reorders(self):
        s = Schema(["a", "b", "c"]).select("c", "a")
        assert s.fields == ("c", "a")

    def test_select_unknown_raises(self):
        with pytest.raises(SchemaError):
            Schema(["a"]).select("b")

    def test_rename(self):
        s = Schema(["a", "b"]).rename({"a": "x"})
        assert s.fields == ("x", "b")

    def test_rename_unknown_raises(self):
        with pytest.raises(SchemaError):
            Schema(["a"]).rename({"z": "x"})

    def test_concat_prefixes_collisions(self):
        left = Schema(["id", "k"])
        right = Schema(["k", "v"])
        joined = left.concat(right, "r_")
        assert joined.fields == ("id", "k", "r_k", "r_v")


class TestRecordOps:
    def test_make_and_get(self):
        s = Schema(["a", "b"])
        r = s.make(a=1, b=2)
        assert r == (1, 2)
        assert s.get(r, "b") == 2

    def test_make_missing_field_raises(self):
        with pytest.raises(SchemaError):
            Schema(["a", "b"]).make(a=1)

    def test_make_extra_field_raises(self):
        with pytest.raises(SchemaError):
            Schema(["a"]).make(a=1, b=2)

    def test_asdict(self):
        s = Schema(["a", "b"])
        assert s.asdict((1, 2)) == {"a": 1, "b": 2}

    def test_project(self):
        s = Schema(["a", "b", "c"])
        assert s.project((1, 2, 3), ["c", "a"]) == (3, 1)

    def test_projector_matches_project(self):
        s = Schema(["a", "b", "c"])
        p = s.projector(["b", "c"])
        assert p((1, 2, 3)) == s.project((1, 2, 3), ["b", "c"])

    def test_replacer(self):
        s = Schema(["a", "b", "c"])
        rep = s.replacer("b")
        assert rep((1, 2, 3), 9) == (1, 9, 3)

    def test_validate_arity(self):
        with pytest.raises(SchemaError):
            Schema(["a", "b"]).validate((1,))

    def test_appender(self):
        s = Schema(["a"])
        assert s.appender()((1,), 2) == (1, 2)


class TestWordSemantics:
    def test_lanes_constant(self):
        # Gorgon tiles are 16-lane vector datapaths (§II-B).
        assert LANES == 16

    def test_field_width(self):
        assert FIELD_BITS == 32

    def test_u32_wraps(self):
        assert as_u32(1 << 32) == 0
        assert as_u32(-1) == 0xFFFFFFFF

    def test_i32_wraps_negative(self):
        assert as_i32(0xFFFFFFFF) == -1
        assert as_i32(0x7FFFFFFF) == 0x7FFFFFFF

    @given(st.integers(min_value=-(1 << 40), max_value=1 << 40))
    def test_u32_range(self, v):
        assert 0 <= as_u32(v) < (1 << 32)

    @given(st.integers(min_value=-(1 << 40), max_value=1 << 40))
    def test_i32_range(self, v):
        assert -(1 << 31) <= as_i32(v) < (1 << 31)

    @given(st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1))
    def test_i32_identity_in_range(self, v):
        assert as_i32(v) == v
