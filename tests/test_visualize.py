"""Graph renderers (DOT / ASCII)."""

from repro.dataflow.visualize import to_ascii, to_dot
from repro.structures import HashTableDataflow


def _graph():
    ht = HashTableDataflow(n_buckets=8, spad_node_capacity=32)
    ht.load([(k, k) for k in range(8)])
    return ht.probe_graph([(0, 1)], emit_all=False)


class TestDot:
    def test_valid_structure(self):
        dot = to_dot(_graph())
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")

    def test_all_tiles_present(self):
        g = _graph()
        dot = to_dot(g)
        for tile in g.tiles:
            assert f'"{tile.name}"' in dot

    def test_all_edges_present(self):
        g = _graph()
        dot = to_dot(g)
        for stream in g.streams:
            assert (f'"{stream.producer.name}" -> '
                    f'"{stream.consumer.name}"') in dot

    def test_loopback_dashed(self):
        dot = to_dot(_graph())
        assert "style=dashed" in dot  # the probe loop's recirculation

    def test_memory_tiles_shaped(self):
        dot = to_dot(_graph())
        assert "box3d" in dot      # scratchpad
        assert "cylinder" in dot   # DRAM


class TestAscii:
    def test_lists_all_tiles(self):
        g = _graph()
        text = to_ascii(g)
        for tile in g.tiles:
            assert tile.name in text

    def test_marks_sources_and_sinks(self):
        text = to_ascii(_graph())
        assert "(src)" in text and "(sink)" in text

    def test_shows_adjacency(self):
        text = to_ascii(_graph())
        assert "->" in text
