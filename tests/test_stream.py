"""Stream (ready-valid channel) semantics."""

import pytest

from repro.dataflow import DEFAULT_CAPACITY, Stream


class TestStreamFlow:
    def test_starts_empty_and_open(self):
        s = Stream("s")
        assert not s.can_pop()
        assert s.can_push()
        assert not s.closed()

    def test_push_pop_fifo_order(self):
        s = Stream("s", capacity=3)
        s.push([(1,)])
        s.push([(2,)])
        assert s.pop() == [(1,)]
        assert s.pop() == [(2,)]

    def test_capacity_backpressure(self):
        s = Stream("s", capacity=2)
        s.push([(1,)])
        s.push([(2,)])
        assert not s.can_push()

    def test_default_capacity_is_skid_buffered(self):
        assert DEFAULT_CAPACITY == 2

    def test_overflow_asserts(self):
        s = Stream("s", capacity=1)
        s.push([(1,)])
        with pytest.raises(AssertionError):
            s.push([(2,)])

    def test_peek_does_not_consume(self):
        s = Stream("s")
        s.push([(7,)])
        assert s.peek() == [(7,)]
        assert s.can_pop()

    def test_peek_empty_returns_none(self):
        assert Stream("s").peek() is None


class TestEndOfStream:
    def test_close_is_idempotent(self):
        s = Stream("s")
        s.close()
        s.close()
        assert s.eos

    def test_closed_requires_drain(self):
        s = Stream("s")
        s.push([(1,)])
        s.close()
        assert not s.closed()  # buffered data remains
        s.pop()
        assert s.closed()

    def test_push_after_eos_asserts(self):
        s = Stream("s")
        s.close()
        with pytest.raises(AssertionError):
            s.push([(1,)])


class TestStreamStats:
    def test_counts_vectors_and_records(self):
        s = Stream("s", capacity=4)
        s.push([(1,), (2,)])
        s.push([(3,)])
        assert s.pushed_vectors == 2
        assert s.pushed_records == 3

    def test_occupancy_and_buffered_records(self):
        s = Stream("s", capacity=4)
        s.push([(1,), (2,)])
        s.push([(3,)])
        assert s.occupancy() == 2
        assert s.buffered_records() == 3
        s.pop()
        assert s.occupancy() == 1
