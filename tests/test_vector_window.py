"""Unit tests for the columnar vector backend (``scheduler="vector"``).

The four-way golden/fuzz parity lives in ``test_scheduler_equivalence``;
this file pins the vector-specific edges: window entry/exit bookkeeping,
mid-window EOS and DRAM retirement, deadline clamps with exact counter
settlement, the injector/tracer veto, the typed missing-numpy error, the
group-burst probing gate, and the CLI/serving plumbing.
"""

import pytest

from repro.dataflow import (
    Engine,
    Graph,
    MapTile,
    SinkTile,
    SourceTile,
)
from repro.errors import DependencyError
from repro.memory import DramMemory
from repro.memory.dram import DramTile
from repro.memory.spad_tile import PortConfig


def _wide_graph(n_chains=6, n_records=600):
    """Parallel src->map->sink chains: line-rate, saturates the fabric."""
    g = Graph("wide")
    for c in range(n_chains):
        src = g.add(SourceTile(f"src{c}", [(i, c) for i in range(n_records)]))
        m = g.add(MapTile(f"m{c}", lambda r: (r[0] + 1, r[1])))
        sink = g.add(SinkTile(f"sink{c}"))
        g.connect(src, m)
        g.connect(m, sink)
    return g


def _dram_chains(n_chains=3, n_requests=400):
    """Parallel src->dram->sink relays (9+ tiles, so the saturated-window
    trigger — not group burst — engages)."""
    g = Graph("chains")
    mem = DramMemory("dram", capacity_words=8192)
    data = mem.region("data", 1024, 1, fill=0)
    for i in range(1024):
        data[i] = i * 5
    for c in range(n_chains):
        src = g.add(SourceTile(f"src{c}", [((i * 37 + c) % 1024,)
                                           for i in range(n_requests)],
                               rate=1))
        dram = g.add(DramTile(f"dram{c}", mem, [PortConfig(
            mode="read", region=data, addr=lambda r: r[0],
            combine=lambda r, v: (r[0], v))]))
        sink = g.add(SinkTile(f"sink{c}"))
        g.connect(src, dram)
        g.connect(dram, sink)
    return g


def _vector_parity(factory, **kwargs):
    """Run event (reference) vs vector; assert bit-identical stats and
    return the vector engine."""
    ref = Engine(factory(), scheduler="event", burst=True, **kwargs)
    eng = Engine(factory(), scheduler="vector", burst=True, **kwargs)
    ref_stats = ref.run()
    stats = eng.run()
    assert stats == ref_stats
    return eng


class TestWindowLifecycle:
    def test_saturated_window_lowers_to_vector(self):
        eng = _vector_parity(_wide_graph)
        # Lowered windows (ramp and/or saturated), never the per-cycle
        # hoisted "fabric" window.  The short line-rate run is covered by
        # a ramp window almost immediately; a longer run must escalate to
        # an uncapped saturated window as well.
        assert "fabric" not in eng.burst_windows
        lowered = sum(sum(w) for k, w in eng.burst_windows.items()
                      if k in ("vector", "ramp"))
        assert lowered > 8
        eng = _vector_parity(lambda: _wide_graph(n_records=4000))
        assert "vector" in eng.burst_windows
        assert sum(eng.burst_windows["vector"]) > 8

    def test_eos_runs_inside_window(self):
        """Source exhaustion and stream close happen under fused kernels;
        the window runs through EOS to the drain and the read-back is
        exact (pinned by stats parity + closed streams)."""
        eng = _vector_parity(_wide_graph)
        g = eng.graph
        for stream in g.streams:
            assert stream.closed()
            assert stream.occupancy() == 0
        for c in range(6):
            sink = g.tile(f"sink{c}")
            assert sink.completion_cycle is not None
            assert len(sink.records) == 600

    def test_dram_retirement_mid_window(self):
        """Grants issued in-window retire in-window: the sticky exit keeps
        the window resident across the 100-cycle DRAM round trip."""
        eng = _vector_parity(_dram_chains)
        windows = eng.burst_windows.get("vector", [])
        assert windows and max(windows) > 100   # > DRAM_LATENCY

    def test_deadline_clamps_window_with_exact_settlement(self):
        """A deadline raised by ``tok.check`` mid-window fires at the
        identical cycle as the other schedulers, and the finally-settle
        leaves the partially-run window's counters committed.

        The settlement reference is the *exhaustive* scheduler: its
        counters are always current, and a deadline inside a vector
        window strikes a fabric whose sleep credit was settled at window
        entry and whose deferred counters the ``finally`` settles — so
        the two object models must agree exactly.  (Burst-off event
        scheduling is only checked for the error cycle: mid-run it may
        legitimately hold unsettled sleep credit for dozing tiles.)
        """
        from repro.errors import DeadlineExceeded
        from repro.serving import CancelToken

        for deadline in (120, 257):
            engines = {}
            for scheduler, burst in (("exhaustive", False),
                                     ("event", False), ("vector", True)):
                eng = Engine(_dram_chains(), scheduler=scheduler,
                             burst=burst,
                             cancel=CancelToken(deadline_cycle=deadline))
                with pytest.raises(DeadlineExceeded) as ei:
                    eng.run()
                assert ei.value.cycle == deadline
                engines[scheduler] = eng
            # Settlement exactness: the interrupted vector window wrote
            # every deferred counter back before the error propagated.
            # An aborted window is never recorded in burst_windows, so
            # the evidence a window opened (and the deadline struck it or
            # its aftermath) is the lowering the first entry constructs —
            # guard so a future reshape of the graph cannot silently
            # skip the interesting assert.
            assert engines["vector"]._vector_lowering is not None, \
                "deadline fired before any vector window opened"
            ref = engines["exhaustive"].graph
            vec = engines["vector"].graph
            for rt, vt in zip(ref.tiles, vec.tiles):
                assert rt.stats == vt.stats, rt.name
                spad = getattr(rt, "spad_stats", None)
                if spad is not None:
                    assert spad == vt.spad_stats, rt.name

    def test_lowering_cached_across_windows(self):
        eng = Engine(_wide_graph(), scheduler="vector", burst=True)
        eng.run()
        lowering = eng._vector_lowering
        assert lowering is not None
        assert lowering.fallbacks == 0
        summary = lowering.summary()
        assert summary["kinds"]["source"] == 6

    def test_profile_reports_kernel_time(self):
        eng = Engine(_wide_graph(), scheduler="vector", burst=True,
                     profile=True)
        eng.run()
        assert eng.vector_profile
        for kind, (calls, seconds) in eng.vector_profile.items():
            assert calls > 0
            assert seconds >= 0.0
        # The per-tile-class tick profile also credits windowed cycles.
        assert eng.tick_profile


class TestHookVeto:
    def test_tracer_vetoes_vector_windows(self):
        from repro.observability import Tracer
        ref = Engine(_wide_graph(), scheduler="event", burst=False,
                     tracer=Tracer())
        ref_stats = ref.run()
        eng = Engine(_wide_graph(), scheduler="vector", burst=True,
                     tracer=Tracer())
        stats = eng.run()
        assert stats == ref_stats
        assert eng.burst_windows == {}

    def test_injector_vetoes_vector_windows(self):
        from repro.reliability import FaultEvent, FaultInjector, FaultKind

        def inj():
            return FaultInjector([FaultEvent(
                FaultKind.TILE_STALL, "m0", cycle=9, duration=7)])

        ref = Engine(_wide_graph(), scheduler="event", burst=False,
                     injector=inj())
        ref_stats = ref.run()
        eng = Engine(_wide_graph(), scheduler="vector", burst=True,
                     injector=inj())
        stats = eng.run()
        assert stats == ref_stats
        assert eng.burst_windows == {}


class TestNumpyGate:
    def test_missing_numpy_raises_typed_error_at_construction(self,
                                                              monkeypatch):
        import repro.dataflow.vector as vec
        monkeypatch.setattr(vec, "HAVE_NUMPY", False)
        with pytest.raises(DependencyError, match="numpy"):
            Engine(_wide_graph(), scheduler="vector")

    def test_other_schedulers_unaffected(self, monkeypatch):
        import repro.dataflow.vector as vec
        monkeypatch.setattr(vec, "HAVE_NUMPY", False)
        Engine(_wide_graph(), scheduler="event").run()

    def test_unknown_scheduler_still_rejected(self):
        with pytest.raises(ValueError):
            Engine(_wide_graph(), scheduler="columnar")


class TestGroupBurstGate:
    """``_group_burst_possible``: probing is disabled up front for graphs
    whose sources cannot sustain a committable (>= 16 cycle) window."""

    def _engine(self, n_records, rate=1):
        g = Graph("gate")
        src = g.add(SourceTile("src", [(i,) for i in range(n_records)],
                               rate=rate))
        sink = g.add(SinkTile("sink"))
        g.connect(src, sink)
        return Engine(g), list(g.tiles)

    def test_short_source_disables_probing(self):
        eng, tiles = self._engine(16)       # bound = 15 < 16
        assert not eng._group_burst_possible(tiles)

    def test_long_source_enables_probing(self):
        eng, tiles = self._engine(64)       # bound = 63 >= 16
        assert eng._group_burst_possible(tiles)

    def test_custom_burst_plan_assumed_probe_worthy(self):
        class CustomTile(SinkTile):
            def burst_plan(self):
                return None

        g = Graph("custom")
        src = g.add(SourceTile("src", [(i,) for i in range(4)]))
        sink = g.add(CustomTile("sink"))
        g.connect(src, sink)
        eng = Engine(g)
        assert eng._group_burst_possible(list(g.tiles))

    def test_short_graph_still_runs_identically(self):
        """probe_sparse shape: probing disabled, stats bit-identical,
        and no group window commits with burst on."""
        ref, __ = self._engine(10)
        ref.burst = False
        ref_stats = ref.run()
        eng, __ = self._engine(10)
        stats = eng.run()
        assert stats == ref_stats
        assert eng.burst_windows == {}


class TestServingPlumbing:
    def test_policy_scheduler_applied_to_sim_jobs(self):
        from repro.serving import ServingPolicy, ServingRuntime

        rt = ServingRuntime(policy=ServingPolicy(scheduler="vector"))
        sim_jobs = [j for j in rt.workload.jobs.values()
                    if getattr(j, "kind", None) == "sim"]
        assert sim_jobs
        assert all(j.scheduler == "vector" for j in sim_jobs)

    def test_sim_job_identical_under_vector(self):
        from repro.serving.workload import SimJob

        job_e = SimJob("wide", _wide_graph)
        job_v = SimJob("wide", _wide_graph, scheduler="vector")
        assert job_e.execute() == job_v.execute()


class TestCli:
    def test_microbench_vector_with_profile(self, capsys):
        from repro.__main__ import main

        assert main(["microbench", "--case", "probe_saturated_2048t",
                     "--scheduler", "vector", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "vector scheduler" in out
        assert "vector kernels" in out
        assert "burst windows" in out
        # Compiled-vs-interpreted lambda attribution: the saturated probe
        # pipeline runs entirely through batch-compiled expressions.
        assert "lambda attribution" in out
        attribution = out.split("lambda attribution", 1)[1]
        assert "100.0%" in attribution

    def test_trace_vector_scheduler(self, capsys):
        from repro.__main__ import main

        assert main(["trace", "--case", "probe_sparse_32t",
                     "--scheduler", "vector", "--report"]) == 0
        assert "cycles" in capsys.readouterr().out
