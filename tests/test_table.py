"""Relational Table container."""

import pytest

from repro.db import Table
from repro.dataflow import Schema
from repro.errors import SchemaError


class TestConstruction:
    def test_from_columns(self):
        t = Table.from_columns("t", a=[1, 2], b=[3, 4])
        assert t.rows == [(1, 3), (2, 4)]
        assert t.schema.fields == ("a", "b")

    def test_ragged_columns_rejected(self):
        with pytest.raises(SchemaError):
            Table.from_columns("t", a=[1], b=[1, 2])

    def test_empty_table(self):
        t = Table("t", Schema(["a"]))
        assert len(t) == 0

    def test_iteration(self):
        t = Table.from_columns("t", a=[1, 2, 3])
        assert [r[0] for r in t] == [1, 2, 3]


class TestAccess:
    def _t(self):
        return Table.from_columns("t", id=[1, 2, 3], v=[10, 20, 30])

    def test_column(self):
        assert self._t().column("v") == [10, 20, 30]

    def test_col_index(self):
        assert self._t().col_index("v") == 1

    def test_getter(self):
        g = self._t().getter("v")
        assert g((1, 10)) == 10

    def test_head_as_dicts(self):
        h = self._t().head(2)
        assert h == [{"id": 1, "v": 10}, {"id": 2, "v": 20}]

    def test_unknown_column_raises(self):
        with pytest.raises(SchemaError):
            self._t().column("nope")


class TestDerivation:
    def _t(self):
        return Table.from_columns("t", id=[3, 1, 2], v=[30, 10, 20])

    def test_project(self):
        p = self._t().project(["v"])
        assert p.rows == [(30,), (10,), (20,)]

    def test_rename(self):
        r = self._t().rename({"v": "value"})
        assert "value" in r.schema

    def test_extend_computed_column(self):
        e = self._t().extend("double", lambda r: r[1] * 2)
        assert e.rows[0] == (3, 30, 60)

    def test_sort_by(self):
        s = self._t().sort_by("id")
        assert s.column("id") == [1, 2, 3]

    def test_sort_by_reverse(self):
        s = self._t().sort_by("v", reverse=True)
        assert s.column("v") == [30, 20, 10]

    def test_with_rows_shares_schema(self):
        t = self._t()
        w = t.with_rows([(9, 90)])
        assert w.schema is t.schema
        assert w.rows == [(9, 90)]

    def test_derivations_do_not_mutate_source(self):
        t = self._t()
        t.project(["id"])
        t.sort_by("id")
        assert t.column("id") == [3, 1, 2]
