"""The examples are part of the public API surface: each must run clean.

Also re-validates the BFS pattern from graph_traversal.py inline, since
it exercises a tile composition (CAS visited-set + DRAM adjacency fork)
no other test covers.
"""

import os
import subprocess
import sys

import pytest

from repro.dataflow import (
    CopyTile,
    FilterTile,
    ForkTile,
    Graph,
    MapTile,
    MergeTile,
    SinkTile,
    SourceTile,
    run_graph,
)
from repro.memory import (
    DramMemory,
    DramTile,
    PortConfig,
    ScratchpadMemory,
    ScratchpadTile,
)

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                            "examples")

EXAMPLES = ["quickstart.py", "streaming_join.py", "spatial_index.py",
            "graph_traversal.py", "rideshare_analytics.py",
            "pipeline_builder.py"]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_clean(script):
    proc = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


class TestBfsPattern:
    def _bfs(self, adjacency, roots):
        n = len(adjacency)
        spad = ScratchpadMemory("visited")
        visited = spad.region("visited", n, 1, fill=0)
        dram = DramMemory("adj")
        adj = dram.region("adjacency", n, 8, fill=None)
        for node, neighbors in enumerate(adjacency):
            adj[node] = tuple(neighbors)

        g = Graph("bfs")
        src = g.add(SourceTile("src", [(r, 0) for r in roots]))
        entry = g.add(MergeTile("entry"))
        mark = g.add(ScratchpadTile("mark", spad, [PortConfig(
            mode="rmw", region=visited, addr=lambda r: r[0],
            rmw=lambda old, r: (1, old),
            combine=lambda r, old: (r[0], r[1], old))]))
        fresh = g.add(FilterTile("fresh", lambda r: r[2] == 0))
        gather = g.add(DramTile("gather", dram, [PortConfig(
            mode="read", region=adj, addr=lambda r: r[0],
            combine=lambda r, nbs: (r[0], r[1], nbs))]))
        dup = g.add(CopyTile("dup"))
        emit = g.add(MapTile("emit", lambda r: (r[0], r[1])))
        expand = g.add(ForkTile(
            "expand", lambda r: [(nb, r[1] + 1) for nb in r[2]]))
        out = g.add(SinkTile("visited"))
        g.connect(src, entry)
        g.connect(entry, mark)
        g.connect(mark, fresh)
        g.connect(fresh, gather, producer_port=0)
        fresh.drop_output(1)
        g.connect(gather, dup)
        g.connect(dup, emit, producer_port=0)
        g.connect(emit, out)
        g.connect(dup, expand, producer_port=1)
        g.connect(expand, entry, priority=True)
        run_graph(g)
        return {node for node, __ in out.records}

    def _reachable(self, adjacency, roots):
        seen, stack = set(), list(roots)
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(adjacency[node])
        return seen

    def test_chain_graph(self):
        adjacency = [[i + 1] for i in range(49)] + [[]]
        assert self._bfs(adjacency, [0]) == set(range(50))

    def test_disconnected_component_not_visited(self):
        adjacency = [[1], [0], [3], [2]]
        assert self._bfs(adjacency, [0]) == {0, 1}

    def test_random_graph_coverage(self):
        import random
        rng = random.Random(120)
        adjacency = [sorted({rng.randrange(200) for __ in range(3)})
                     for __ in range(200)]
        assert (self._bfs(adjacency, [0])
                == self._reachable(adjacency, [0]))

    def test_each_node_expanded_once(self):
        adjacency = [[1, 2], [0, 2], [0, 1]]  # triangle: heavy racing
        visited = self._bfs(adjacency, [0])
        assert visited == {0, 1, 2}

    def test_multiple_roots(self):
        adjacency = [[], [], [], []]
        assert self._bfs(adjacency, [0, 2]) == {0, 2}
