"""Compute-tile behaviour: packers (thread compaction), the threading
primitives of fig. 5b, and pipeline latency."""

import pytest

from repro.dataflow import (
    LANES,
    CopyTile,
    FilterTile,
    ForkTile,
    Graph,
    MapTile,
    MergeTile,
    Packer,
    SinkTile,
    SourceTile,
    StampTile,
    Stream,
    run_graph,
)
from repro.dataflow.stats import TileStats


class TestPacker:
    def test_full_vector_emitted_without_force(self):
        stream = Stream("out", capacity=4)
        p = Packer(stream)
        p.extend([(i,) for i in range(LANES)])
        assert p.flush(TileStats("t"), force_partial=False)
        assert stream.pop() == [(i,) for i in range(LANES)]

    def test_partial_held_without_force(self):
        stream = Stream("out")
        p = Packer(stream)
        p.push((1,))
        assert not p.flush(TileStats("t"), force_partial=False)
        assert not stream.can_pop()

    def test_partial_emitted_with_force(self):
        stream = Stream("out")
        p = Packer(stream)
        p.push((1,))
        assert p.flush(TileStats("t"), force_partial=True)
        assert stream.pop() == [(1,)]

    def test_compaction_is_dense(self):
        # More than one vector's worth of records compacts into full
        # vectors first — the shuffle/barrel-shift behaviour of fig. 5c.
        stream = Stream("out", capacity=4)
        p = Packer(stream)
        p.extend([(i,) for i in range(LANES + 3)])
        p.flush(TileStats("t"), force_partial=False)
        assert len(stream.pop()) == LANES
        assert len(p.pending) == 3

    def test_dropped_output_discards(self):
        p = Packer(None)
        p.push((1,))
        p.flush(TileStats("t"), force_partial=True)
        assert p.empty()

    def test_respects_downstream_backpressure(self):
        stream = Stream("out", capacity=1)
        stream.push([(0,)])  # already full
        p = Packer(stream)
        p.extend([(i,) for i in range(LANES)])
        assert not p.flush(TileStats("t"), force_partial=True)

    def test_has_room_enforces_spill_limit(self):
        p = Packer(Stream("out"), spill_limit=LANES)
        assert p.has_room(LANES)
        p.extend([(i,) for i in range(LANES)])
        assert not p.has_room(1)


def _run_single(tile, records, n_outputs=1, drop_ports=()):
    """Wire source -> tile -> sinks and run to quiescence."""
    g = Graph("t")
    src = g.add(SourceTile("src", records))
    g.add(tile)
    g.connect(src, tile)
    sinks = []
    for port in range(n_outputs):
        if port in drop_ports:
            tile.drop_output(port)
            sinks.append(None)
        else:
            sink = g.add(SinkTile(f"sink{port}"))
            g.connect(tile, sink, producer_port=port)
            sinks.append(sink)
    stats = run_graph(g)
    return sinks, stats


class TestMapTile:
    def test_applies_function(self):
        (sink,), __ = _run_single(MapTile("m", lambda r: (r[0] * 2,)),
                                  [(i,) for i in range(40)])
        assert sorted(r[0] for r in sink.records) == [2 * i for i in range(40)]

    def test_none_kills_thread(self):
        (sink,), __ = _run_single(
            MapTile("m", lambda r: r if r[0] % 2 == 0 else None),
            [(i,) for i in range(20)])
        assert sorted(r[0] for r in sink.records) == list(range(0, 20, 2))

    def test_latency_delays_output(self):
        g = Graph("lat")
        src = g.add(SourceTile("src", [(1,)]))
        m = g.add(MapTile("m", lambda r: r, latency=20))
        sink = g.add(SinkTile("sink"))
        g.connect(src, m)
        g.connect(m, sink)
        stats = run_graph(g)
        assert stats.cycles >= 20

    def test_preserves_count(self):
        (sink,), __ = _run_single(MapTile("m", lambda r: r),
                                  [(i,) for i in range(100)])
        assert len(sink.records) == 100


class TestFilterTile:
    def test_splits_both_sides(self):
        sinks, __ = _run_single(FilterTile("f", lambda r: r[0] < 10),
                                [(i,) for i in range(30)], n_outputs=2)
        assert sorted(r[0] for r in sinks[0].records) == list(range(10))
        assert sorted(r[0] for r in sinks[1].records) == list(range(10, 30))

    def test_drop_side_terminates_threads(self):
        sinks, __ = _run_single(FilterTile("f", lambda r: r[0] % 3 == 0),
                                [(i,) for i in range(30)], n_outputs=2,
                                drop_ports=(1,))
        assert sorted(r[0] for r in sinks[0].records) == list(range(0, 30, 3))

    def test_all_pass(self):
        sinks, __ = _run_single(FilterTile("f", lambda r: True),
                                [(i,) for i in range(20)], n_outputs=2)
        assert len(sinks[0].records) == 20
        assert len(sinks[1].records) == 0


class TestMergeTile:
    def test_merges_two_sources(self):
        g = Graph("m")
        a = g.add(SourceTile("a", [(i,) for i in range(20)]))
        b = g.add(SourceTile("b", [(100 + i,) for i in range(20)]))
        merge = g.add(MergeTile("merge"))
        sink = g.add(SinkTile("sink"))
        g.connect(a, merge)
        g.connect(b, merge)
        g.connect(merge, sink)
        run_graph(g)
        got = sorted(r[0] for r in sink.records)
        assert got == sorted(list(range(20)) + [100 + i for i in range(20)])

    def test_priority_input_first(self):
        # The priority input's records are taken before the other's when
        # both have data in the same cycle.
        g = Graph("m")
        a = g.add(SourceTile("a", [(0,)] * LANES, rate=LANES))
        b = g.add(SourceTile("b", [(1,)] * LANES, rate=LANES))
        merge = g.add(MergeTile("merge"))
        sink = g.add(SinkTile("sink"))
        g.connect(a, merge)
        g.connect(b, merge, priority=True)
        g.connect(merge, sink)
        run_graph(g)
        first_vector = sink.records[:LANES]
        assert all(r[0] == 1 for r in first_vector)


class TestForkTile:
    def test_spawns_children(self):
        (sink,), __ = _run_single(
            ForkTile("f", lambda r: [(r[0], j) for j in range(3)]),
            [(i,) for i in range(10)])
        assert len(sink.records) == 30

    def test_empty_fork_kills(self):
        (sink,), __ = _run_single(
            ForkTile("f", lambda r: [] if r[0] % 2 else [r]),
            [(i,) for i in range(10)])
        assert sorted(r[0] for r in sink.records) == [0, 2, 4, 6, 8]

    def test_large_fanout_absorbed(self):
        (sink,), __ = _run_single(
            ForkTile("f", lambda r: [(r[0], j) for j in range(50)]),
            [(i,) for i in range(4)])
        assert len(sink.records) == 200


class TestCopyAndStamp:
    def test_copy_duplicates_to_both_ports(self):
        sinks, __ = _run_single(CopyTile("c"), [(i,) for i in range(15)],
                                n_outputs=2)
        assert sorted(sinks[0].records) == sorted(sinks[1].records)
        assert len(sinks[0].records) == 15

    def test_stamp_appends_unique_counter(self):
        (sink,), __ = _run_single(StampTile("s", start=100),
                                  [(i,) for i in range(25)])
        stamps = sorted(r[1] for r in sink.records)
        assert stamps == list(range(100, 125))

    def test_stamp_preserves_payload(self):
        (sink,), __ = _run_single(StampTile("s"), [(7,), (8,)])
        payloads = sorted(r[0] for r in sink.records)
        assert payloads == [7, 8]


class TestLaneOccupancy:
    def test_full_streams_have_full_occupancy(self):
        (sink,), stats = _run_single(MapTile("m", lambda r: r),
                                     [(i,) for i in range(LANES * 8)])
        assert stats.tiles["m"].lane_occupancy > 0.9

    def test_source_occupancy_full(self):
        (sink,), stats = _run_single(MapTile("m", lambda r: r),
                                     [(i,) for i in range(LANES * 4)])
        assert stats.tiles["src"].lane_occupancy == 1.0
