"""End-to-end serving chaos: the PR 4 acceptance invariants.

A seeded open-loop load test of 200+ mixed requests through the serving
runtime with deterministically flaky replicas must (1) never serve a
wrong result, (2) attach a typed :class:`~repro.errors.ReproError` to
every non-success, (3) produce exactly one outcome per request, and
(4) be bit-for-bit reproducible from its seed.  Overload must actually
engage the admission bound, and the whole exercise must leave the
cancel-free engine hot path untouched.
"""

import pytest

from repro.errors import ReproError
from repro.serving import (
    LoadTestConfig,
    ServingWorkload,
    chaos_report,
    check_invariants,
    generate_requests,
    run_loadtest,
    signature,
)


@pytest.fixture(scope="module")
def workload():
    w = ServingWorkload()
    w.warm()
    return w


@pytest.fixture(scope="module")
def chaos_run(workload):
    """One 200-request overload+faults run, shared by the assertions."""
    cfg = LoadTestConfig(requests=200, seed=0, faults=True)
    return cfg, run_loadtest(cfg, workload)


class TestChaosInvariants:
    def test_no_invariant_violations(self, chaos_run):
        __, runtime = chaos_run
        assert check_invariants(runtime) == []

    def test_one_outcome_per_request(self, chaos_run):
        __, runtime = chaos_run
        assert len(runtime.outcomes) == 200
        assert len({o.request.id for o in runtime.outcomes}) == 200

    def test_zero_wrong_results_and_digests_match_golden(self, chaos_run,
                                                         workload):
        __, runtime = chaos_run
        assert all(o.status != "wrong_result" for o in runtime.outcomes)
        # Spot-audit: ok outcomes on flaky replicas still matched golden
        # (the runtime verified the digest before reporting ok).
        flaky_names = {r.name for r in runtime.replicas
                       if r.fault_seed is not None}
        served_on_flaky = [o for o in runtime.outcomes
                           if o.ok and o.replica in flaky_names]
        assert served_on_flaky, "chaos run never served from a flaky replica"

    def test_every_non_success_is_typed(self, chaos_run):
        __, runtime = chaos_run
        non_ok = [o for o in runtime.outcomes if not o.ok]
        assert non_ok, "chaos run produced no failures to type-check"
        assert all(isinstance(o.error, ReproError) for o in non_ok)

    def test_all_failure_modes_exercised(self, chaos_run):
        __, runtime = chaos_run
        statuses = {o.status for o in runtime.outcomes}
        assert {"ok", "shed", "deadline", "failed"} <= statuses

    def test_bit_for_bit_reproducible(self, chaos_run, workload):
        cfg, runtime = chaos_run
        rerun = run_loadtest(cfg, ServingWorkload())
        assert signature(runtime) == signature(rerun)

    def test_different_seed_different_run(self, chaos_run, workload):
        cfg, runtime = chaos_run
        other_cfg = LoadTestConfig(requests=200, seed=1, faults=True)
        other = run_loadtest(other_cfg, workload)
        assert check_invariants(other) == []
        assert signature(runtime) != signature(other)

    def test_report_carries_quantiles_and_verdict(self, chaos_run):
        cfg, runtime = chaos_run
        report = chaos_report(cfg, runtime, check_invariants(runtime))
        assert report["invariants"]["ok"]
        lat = report["latency_cycles"]["interactive"]
        assert lat["p50"] is not None and lat["p99"] >= lat["p50"]
        assert 0.0 <= report["shed_rate"] < 1.0
        assert report["outcomes"]["ok"] + report["outcomes"]["shed"] + \
            report["outcomes"]["deadline"] + report["outcomes"]["failed"] \
            == 200


class TestOverloadBehaviour:
    def test_admission_bound_engages_under_overload(self, workload):
        cfg = LoadTestConfig(requests=120, seed=2,
                             mean_interarrival=150)   # ~3.7x capacity
        runtime = run_loadtest(cfg, workload)
        assert check_invariants(runtime) == []
        report = runtime.report()
        assert report["outcomes"]["shed"] > 0
        # The queue never exceeded its bound (+retry requeues, which are
        # bounded by the retry budget and bypass capacity by design).
        peak = runtime.metrics.histograms["serving.queue_depth"].max
        assert peak <= cfg.policy.queue_depth

    def test_interactive_sheds_less_than_batch_under_overload(self,
                                                              workload):
        cfg = LoadTestConfig(requests=200, seed=4, mean_interarrival=200)
        runtime = run_loadtest(cfg, workload)
        by_class = {"interactive": [0, 0], "batch": [0, 0]}
        for o in runtime.outcomes:
            by_class[o.request.klass][0] += 1
            if o.status == "shed":
                by_class[o.request.klass][1] += 1
        rates = {k: shed / total for k, (total, shed) in by_class.items()}
        assert rates["interactive"] < rates["batch"]

    def test_fault_free_run_has_no_failures(self, workload):
        cfg = LoadTestConfig(requests=100, seed=0, faults=False,
                             mean_interarrival=1_500)
        runtime = run_loadtest(cfg, workload)
        assert check_invariants(runtime) == []
        assert all(o.ok for o in runtime.outcomes)


class TestZeroCostWhenUnused:
    def test_engine_stats_identical_without_cancel_token(self):
        # The serving layer's engine hook must not perturb plain runs:
        # cancel=None is the default and the only added work per cycle is
        # one is-None test, with bit-identical SimStats.
        from repro.dataflow import Engine
        from repro.serving.workload import _chase_graph
        plain = Engine(_chase_graph()).run()
        explicit = Engine(_chase_graph(), cancel=None).run()
        assert plain == explicit

    def test_request_generation_is_pure(self):
        cfg = LoadTestConfig(requests=10, seed=0)
        generate_requests(cfg)
        assert generate_requests(cfg)[9].arrival == \
            generate_requests(cfg)[9].arrival


class TestCacheChaos:
    """The partition-cache tier under full chaos: Zipf-skewed predicated
    traffic with flaky replicas, a permanent replica kill, mid-run
    invalidation churn, and cached-fragment corruption — integrity and
    typed-error discipline must survive all of it."""

    @pytest.fixture(scope="class")
    def cache_run(self, workload):
        cfg = LoadTestConfig(requests=200, seed=3, faults=True, cache=True,
                             zipf=1.1, kills=1, invalidations=3,
                             corruptions=2, elastic=True)
        return cfg, run_loadtest(cfg, workload)

    def test_no_invariant_violations(self, cache_run):
        __, runtime = cache_run
        assert check_invariants(runtime) == []

    def test_conservation_and_zero_wrong_results(self, cache_run):
        __, runtime = cache_run
        assert len(runtime.outcomes) == 200
        assert len({o.request.id for o in runtime.outcomes}) == 200
        assert all(o.status != "wrong_result" for o in runtime.outcomes)

    def test_cache_engaged_and_churn_landed(self, cache_run):
        __, runtime = cache_run
        report = runtime.report()["partition_cache"]
        assert report["hits"] + report["partial_hits"] > 0
        assert report["misses"] > 0            # invalidations forced some
        assert report["invalidations"] == 3
        assert report["corruptions_injected"] == 2
        # Every injected corruption was caught by the CRC tripwire (served
        # or evicted, never surfaced): dropped on next touch or still
        # sitting unused — but no wrong result either way (checked above).
        assert report["corruption_dropped"] <= 2

    def test_every_non_success_is_typed(self, cache_run):
        __, runtime = cache_run
        non_ok = [o for o in runtime.outcomes if not o.ok]
        assert all(isinstance(o.error, ReproError) for o in non_ok)

    def test_bit_for_bit_reproducible(self, cache_run):
        cfg, runtime = cache_run
        rerun = run_loadtest(cfg, ServingWorkload())
        assert signature(runtime) == signature(rerun)

    def test_cached_dispositions_land_on_outcomes(self, cache_run):
        __, runtime = cache_run
        cached = [o for o in runtime.outcomes if o.cached]
        assert cached, "Zipf mix never touched the cache tier"
        assert {o.cached.split(":")[0] for o in cached} <= \
            {"hit", "partial", "miss"}
