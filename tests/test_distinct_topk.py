"""distinct and top_k streaming operators."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.db import ExecutionContext, Table
from repro.db.operators import distinct, limit, order_by, top_k


class TestDistinct:
    def test_whole_row_dedup(self):
        t = Table.from_columns("t", a=[1, 1, 2, 2, 3], b=[1, 1, 2, 9, 3])
        out = distinct(t)
        assert out.rows == [(1, 1), (2, 2), (2, 9), (3, 3)]

    def test_field_subset_dedup_keeps_first(self):
        t = Table.from_columns("t", a=[1, 1, 2], b=[10, 20, 30])
        out = distinct(t, fields=["a"])
        assert out.rows == [(1, 10), (2, 30)]

    def test_order_preserved(self):
        t = Table.from_columns("t", a=[3, 1, 3, 2, 1])
        assert distinct(t).column("a") == [3, 1, 2]

    def test_events_traced(self):
        ctx = ExecutionContext()
        t = Table.from_columns("t", a=[1] * 50)
        distinct(t, ctx=ctx)
        assert ctx.traces[-1].op == "distinct"
        assert ctx.traces[-1].events.rmw_ops >= 1

    @given(st.lists(st.integers(0, 20), max_size=200))
    @settings(max_examples=25, deadline=None)
    def test_property_matches_set_semantics(self, values):
        t = Table.from_columns("t", a=values)
        out = distinct(t).column("a")
        assert out == list(dict.fromkeys(values))


class TestTopK:
    def _t(self, seed=140, n=200):
        rng = random.Random(seed)
        return Table.from_columns(
            "t", v=[rng.randrange(10_000) for __ in range(n)],
            id=list(range(n)))

    def test_matches_sort_limit(self):
        t = self._t()
        heap = top_k(t, "v", 10)
        ref = limit(order_by(t, "v"), 10)
        assert sorted(heap.rows) == sorted(ref.rows)

    def test_largest(self):
        t = self._t(seed=141)
        heap = top_k(t, "v", 5, smallest=False)
        ref = limit(order_by(t, "v", reverse=True), 5)
        assert sorted(heap.rows) == sorted(ref.rows)

    def test_k_larger_than_table(self):
        t = self._t(n=7)
        assert len(top_k(t, "v", 100)) == 7

    def test_k_zero(self):
        assert len(top_k(self._t(), "v", 0)) == 0

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            top_k(self._t(), "v", -1)

    def test_results_sorted(self):
        out = top_k(self._t(seed=142), "v", 20)
        vals = out.column("v")
        assert vals == sorted(vals)

    def test_trace_note(self):
        ctx = ExecutionContext()
        top_k(self._t(), "v", 3, ctx=ctx)
        assert "k=3" in ctx.traces[-1].note

    @given(st.lists(st.integers(), max_size=150), st.integers(0, 20))
    @settings(max_examples=25, deadline=None)
    def test_property_matches_sorted_prefix(self, values, k):
        t = Table.from_columns("t", v=values)
        out = top_k(t, "v", k).column("v")
        assert out == sorted(values)[:k]
