"""Observability layer: attribution exactness, zero-cost contract,
metrics algebra, and export formats.

The load-bearing invariants:

* every tile's attribution row sums *exactly* to the run's simulated
  cycle count (the ring may drop events; attribution may not drift);
* ``compute + bank_conflict`` equals the tile's own ``busy_cycles`` on
  non-injected graphs (the decomposition agrees with ``SimStats``);
* tracing never changes simulation results: ``SimStats`` are
  bit-identical tracer-on vs tracer-off, under both schedulers;
* occupancies are fractions in [0, 1];
* counters/histograms/registries obey merge algebra (hypothesis-checked).
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow import (
    Engine,
    Graph,
    MapTile,
    MergeTile,
    SinkTile,
    SourceTile,
)
from repro.db import ExecutionContext
from repro.observability import (
    ATTRIBUTION_KEYS,
    COMPUTE,
    Counter,
    Histogram,
    MetricsRegistry,
    StallReason,
    Tracer,
    attribution_report,
)

from tests.test_scheduler_equivalence import CASES, _dram_gather_graph, \
    _hist_graph

SCHEDULERS = ("exhaustive", "event")


def _traced(factory, injector_factory=None, scheduler="event",
            capacity=None):
    tracer = Tracer(capacity=capacity) if capacity else Tracer()
    inj = injector_factory() if injector_factory else None
    graph = factory()
    stats = Engine(graph, injector=inj, scheduler=scheduler,
                   tracer=tracer).run()
    return graph, stats, tracer


# -- exactness properties ---------------------------------------------------

@pytest.mark.parametrize("name,factory,injector_factory",
                         CASES, ids=[c[0] for c in CASES])
@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_rows_sum_to_total_cycles(name, factory, injector_factory,
                                  scheduler):
    graph, stats, tracer = _traced(factory, injector_factory, scheduler)
    attr = tracer.attribution()
    assert set(attr) == {t.name for t in graph.tiles}
    for tile_name, row in attr.items():
        assert row["total"] == stats.cycles, tile_name
        assert sum(row[k] for k in ATTRIBUTION_KEYS) == stats.cycles
        assert all(row[k] >= 0 for k in ATTRIBUTION_KEYS)


@pytest.mark.parametrize(
    "name,factory,injector_factory",
    [c for c in CASES if c[2] is None],
    ids=[c[0] for c in CASES if c[2] is None])
def test_compute_bucket_matches_busy_cycles(name, factory,
                                            injector_factory):
    # Bank-conflict cycles are carved out of compute, so the pair together
    # must equal the tile's own busy counter.  (Injected runs are excluded:
    # a suspended tile skips ticks, freezing its classification.)
    __, stats, tracer = _traced(factory, None)
    for tile_name, row in tracer.attribution().items():
        busy = stats.tiles[tile_name].busy_cycles
        assert row[COMPUTE] + row["bank_conflict"] == busy, tile_name


@pytest.mark.parametrize("name,factory,injector_factory",
                         CASES, ids=[c[0] for c in CASES])
def test_occupancy_is_a_fraction(name, factory, injector_factory):
    graph, stats, tracer = _traced(factory, injector_factory)
    for tile in graph.tiles:
        occ = tracer.occupancy(tile.name)
        assert 0.0 <= occ <= 1.0
        gauge = tracer.metrics.gauges.get(f"tile.{tile.name}.occupancy")
        if gauge is not None:
            assert 0.0 <= gauge.value <= 1.0


@pytest.mark.parametrize("name,factory,injector_factory",
                         CASES, ids=[c[0] for c in CASES])
@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_tracing_does_not_change_simstats(name, factory, injector_factory,
                                          scheduler):
    inj = injector_factory() if injector_factory else None
    bare = Engine(factory(), injector=inj, scheduler=scheduler).run()
    __, traced, __ = _traced(factory, injector_factory, scheduler)
    assert traced == bare


# -- stall-reason taxonomy --------------------------------------------------

def test_backpressure_attributed():
    # Two full-rate sources into one merge: the merge drains at most one
    # vector per cycle, so one source must back up on its stream.
    g = Graph("bp")
    a = g.add(SourceTile("src_a", [(i, 0) for i in range(256)]))
    b = g.add(SourceTile("src_b", [(i, 1) for i in range(256)]))
    merge = g.add(MergeTile("merge"))
    sink = g.add(SinkTile("sink"))
    g.connect(a, merge)
    g.connect(b, merge)
    g.connect(merge, sink)
    tracer = Tracer()
    Engine(g, tracer=tracer).run()
    attr = tracer.attribution()
    assert (attr["src_a"]["backpressure"] + attr["src_b"]["backpressure"]) > 0


def test_latency_attributed():
    # One vector through a deep pipeline: the in-flight cycles are neither
    # starvation nor backpressure — they are pipeline latency.
    g = Graph("lat")
    src = g.add(SourceTile("src", [(1,)]))
    m = g.add(MapTile("deep", lambda r: r, latency=20))
    sink = g.add(SinkTile("sink"))
    g.connect(src, m)
    g.connect(m, sink)
    tracer = Tracer()
    Engine(g, tracer=tracer).run()
    assert tracer.attribution()["deep"]["latency"] >= 18


def _hot_bucket_graph():
    """Every lane increments the same counter: maximal bank conflicts."""
    from repro.memory import ScratchpadMemory
    from repro.memory.spad_tile import PortConfig, ScratchpadTile

    g = Graph("hot")
    mem = ScratchpadMemory("mem")
    counts = mem.region("counts", 64, 1, fill=0)
    src = g.add(SourceTile("src", [(0,) for __ in range(256)]))
    spad = g.add(ScratchpadTile("spad", mem, [PortConfig(
        mode="rmw", region=counts, addr=lambda r: r[0],
        rmw=lambda old, r: (old + 1, old + 1),
        combine=lambda r, res: None)]))
    g.connect(src, spad)
    return g


def test_bank_conflicts_attributed():
    __, stats, tracer = _traced(_hot_bucket_graph)
    row = tracer.attribution()["spad"]
    assert row["bank_conflict"] > 0
    assert stats.scratchpads["spad"].bank_conflicts > 0
    assert tracer.metrics.counters["tile.spad.conflict_bids"].value > 0
    # The sequential-address histogram, by contrast, is conflict-free —
    # the reordering pipeline's whole point (§III-B).
    __, __, clean = _traced(_hist_graph)
    assert clean.attribution()["spad"]["bank_conflict"] == 0


def test_dram_wait_attributed_and_mlp_recorded():
    __, stats, tracer = _traced(lambda: _dram_gather_graph(rate=16))
    row = tracer.attribution()["dram_t"]
    # A full-rate source issues everything early, then the tile sits out
    # the DRAM round trip with responses in flight.
    assert row["dram_wait"] > 0
    mlp = tracer.metrics.histograms["dram.dram_t.mlp"]
    assert mlp.count == 256               # one observation per issued request
    assert mlp.max > 1                    # overlapping requests in flight


def test_stall_reason_values_cover_attribution_keys():
    assert set(ATTRIBUTION_KEYS) == {COMPUTE} | {
        r.value for r in StallReason}


# -- the bounded ring -------------------------------------------------------

def test_ring_bounded_but_attribution_exact():
    graph, stats, small = _traced(_hist_graph, capacity=32)
    assert len(small.events) <= 32
    assert small.dropped == small.emitted - len(small.events)
    assert small.dropped > 0
    __, __, full = _traced(_hist_graph)
    assert full.dropped == 0
    # Dropping ring events must not perturb the accumulators.
    assert small.attribution() == full.attribution()
    for row in small.attribution().values():
        assert row["total"] == stats.cycles


def test_tracer_reuse_resets_per_run():
    tracer = Tracer()
    g1 = _hist_graph()
    Engine(g1, tracer=tracer).run()
    first = tracer.attribution()
    g2 = _hist_graph()
    Engine(g2, tracer=tracer).run()
    assert tracer.runs == 2
    assert tracer.attribution() == first      # fresh, not accumulated
    # The first graph's hooks were detached when the tracer re-armed.
    g3 = _hist_graph()
    Engine(g3).run()
    assert all(t.tracer is None for t in g3.tiles)


# -- exports ----------------------------------------------------------------

def test_chrome_trace_is_valid_and_covers_run(tmp_path):
    __, stats, tracer = _traced(_hist_graph)
    doc = json.loads(json.dumps(tracer.chrome_trace()))
    assert doc["otherData"]["cycles"] == stats.cycles
    slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert slices
    # With nothing dropped, each tile's slices tile the full run exactly.
    per_tile = {}
    for s in slices:
        per_tile[s["tid"]] = per_tile.get(s["tid"], 0) + s["dur"]
    assert set(per_tile.values()) == {stats.cycles}
    out = tmp_path / "trace.json"
    tracer.export_chrome(out)
    assert json.loads(out.read_text())["traceEvents"]


def test_timeline_and_report_render():
    __, stats, tracer = _traced(_hist_graph)
    timeline = tracer.timeline(max_transitions=4)
    assert "spad" in timeline and "@0" in timeline
    report = attribution_report(stats, tracer, scheduler="event")
    assert f"{stats.cycles} simulated cycles" in report
    assert "WARNING" not in report
    assert "spad" in report and "bankconf" in report


def test_execution_context_accumulates_metrics():
    ctx = ExecutionContext()
    __, __, tracer = _traced(lambda: _dram_gather_graph(rate=16))
    ctx.record_sim(tracer)
    ctx.record_sim(tracer)
    mlp = ctx.metrics.histograms["dram.dram_t.mlp"]
    assert mlp.count == 2 * 256           # two fragments folded in
    emitted = ctx.metrics.counters["trace.events.emitted"].value
    assert emitted == 2 * tracer.emitted


# -- metrics algebra (hypothesis) -------------------------------------------

values = st.integers(min_value=0, max_value=64)


@settings(max_examples=50, deadline=None)
@given(st.lists(values))
def test_histogram_moments(xs):
    h = Histogram("h")
    for x in xs:
        h.observe(x)
    assert h.count == len(xs)
    assert h.total == sum(xs)
    assert h.min == (min(xs) if xs else None)
    assert h.max == (max(xs) if xs else None)
    assert sum(h.buckets.values()) == len(xs)
    if xs:
        assert h.mean == pytest.approx(sum(xs) / len(xs))


@settings(max_examples=50, deadline=None)
@given(st.lists(values), st.lists(values))
def test_histogram_merge_is_concatenation(xs, ys):
    merged = Histogram("m")
    for x in xs:
        merged.observe(x)
    other = Histogram("m")
    for y in ys:
        other.observe(y)
    merged.merge(other)
    direct = Histogram("m")
    for v in xs + ys:
        direct.observe(v)
    assert merged.buckets == direct.buckets
    assert (merged.count, merged.total, merged.min, merged.max) == \
        (direct.count, direct.total, direct.min, direct.max)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.sampled_from("abc"), st.integers(0, 10))),
       st.lists(st.tuples(st.sampled_from("abc"), st.integers(0, 10))))
def test_registry_merge_adds_counters(first, second):
    left, right = MetricsRegistry(), MetricsRegistry()
    for name, n in first:
        left.counter(name).inc(n)
    for name, n in second:
        right.counter(name).inc(n)
    left.merge(right)
    everything = first + second
    for name in "abc":
        expected = sum(n for k, n in everything if k == name)
        got = left.counters.get(name)
        assert (got.value if got else 0) == expected


def test_counter_is_monotone():
    c = Counter("c")
    c.inc()
    c.inc(5)
    assert c.value == 6
