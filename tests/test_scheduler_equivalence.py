"""Golden equivalence suite: exhaustive / event / burst / vector schedulers.

The event-driven ready-set scheduler (``Engine(scheduler="event")``), its
burst fast path, and the columnar vector backend
(``Engine(scheduler="vector")``) are wall-clock optimisations of the
simulator, not model changes: simulated cycle counts and every
``SimStats`` field must be **bit-identical** to the exhaustive
tick-everything loop on every graph shape — cyclic, divergent,
DRAM-bound, memory-pipeline, and with a ``FaultInjector`` armed.

Each factory builds a *fresh* graph (and, where applicable, a fresh
injector with an identical schedule) per run so the two schedulers never
share mutable state.
"""

import random

import pytest

from repro.dataflow import (
    Engine,
    FilterTile,
    ForkTile,
    Graph,
    MapTile,
    MergeTile,
    SinkTile,
    SourceTile,
)
from repro.dataflow.mergesort import merge_sort_graph
from repro.errors import SimulationError, StallError
from repro.memory import DramMemory, ScratchpadMemory
from repro.memory.dram import DramTile
from repro.memory.spad_tile import PortConfig, ScratchpadTile
from repro.reliability import FaultEvent, FaultInjector, FaultKind
from repro.structures.spill import SpillTile


def _countdown_graph():
    """The canonical while-loop dataflow of fig. 5a: decrement until 0."""
    g = Graph("loop")
    src = g.add(SourceTile("src", [(i, i % 9) for i in range(200)]))
    merge = g.add(MergeTile("merge"))
    cond = g.add(FilterTile("cond", lambda r: r[1] <= 0))
    dec = g.add(MapTile("dec", lambda r: (r[0], r[1] - 1)))
    sink = g.add(SinkTile("sink"))
    g.connect(src, merge)
    g.connect(merge, cond)
    g.connect(cond, sink, producer_port=0)
    g.connect(cond, dec, producer_port=1)
    g.connect(dec, merge, priority=True)
    return g


def _divergent_fork_graph():
    """Fork-amplified divergence through a spill queue (tree-walk shape)."""
    g = Graph("fork")
    src = g.add(SourceTile("src", [(i,) for i in range(64)], rate=4))
    fork = g.add(ForkTile(
        "fork", lambda r: [(r[0], j) for j in range(r[0] % 5)]))
    spill = g.add(SpillTile("spill", on_chip_capacity=16))
    keep = g.add(FilterTile("keep", lambda r: (r[0] + r[1]) % 3 != 0))
    sink = g.add(SinkTile("sink"))
    g.connect(src, fork)
    g.connect(fork, spill)
    g.connect(spill, keep)
    g.connect(keep, sink, producer_port=0)
    keep.drop_output(1)
    return g


def _dram_gather_graph(rate=16):
    """DRAM gather; a throttled source leaves the fabric latency-bound."""
    g = Graph("gather")
    mem = DramMemory("dram", capacity_words=4096)
    data = mem.region("data", 1024, 1, fill=0)
    for i in range(1024):
        data[i] = i * 3
    src = g.add(SourceTile("src", [((i * 37) % 1024,) for i in range(256)],
                           rate=rate))
    dram = g.add(DramTile("dram_t", mem, [PortConfig(
        mode="read", region=data, addr=lambda r: r[0],
        combine=lambda r, v: (r[0], v))]))
    sink = g.add(SinkTile("sink"))
    g.connect(src, dram, name="reqs")
    g.connect(dram, sink, name="resps")
    return g


def _hist_graph():
    """Scratchpad RMW histogram (bank conflicts + rmw forwarding)."""
    g = Graph("hist")
    mem = ScratchpadMemory("mem")
    counts = mem.region("counts", 64, 1, fill=0)
    src = g.add(SourceTile("src", [(i % 64,) for i in range(512)]))
    g.add(ScratchpadTile("spad", mem, [PortConfig(
        mode="rmw", region=counts, addr=lambda r: r[0],
        rmw=lambda old, r: (old + 1, old + 1),
        combine=lambda r, res: None)]))
    g.connect(g.tile("src"), g.tile("spad"), name="reqs")
    return g


def _mergesort_graph():
    runs = [sorted((i * 7 + k) % 100 for i in range(40))
            for k in range(4)]
    return merge_sort_graph("msort", [[(v,) for v in run] for run in runs],
                            key=lambda r: r[0])


def _mergesort_expr_graph():
    """Same tree with an ``Expr`` key: the lambda-fused sorted-merge
    kernel (and its four-way parity) instead of the per-record path."""
    from repro.dataflow.expr import Field
    runs = [sorted((i * 7 + k) % 100 for i in range(40))
            for k in range(4)]
    return merge_sort_graph("msort", [[(v,) for v in run] for run in runs],
                            key=Field(0))


def _stall_injector():
    return FaultInjector([
        FaultEvent(FaultKind.TILE_STALL, "m", cycle=4, duration=13),
        FaultEvent(FaultKind.TILE_STALL, "sink", cycle=30, duration=7),
    ])


def _stalled_map_graph():
    g = Graph("g")
    src = g.add(SourceTile("src", [(i,) for i in range(256)]))
    m = g.add(MapTile("m", lambda r: (r[0] * 2,)))
    sink = g.add(SinkTile("sink"))
    g.connect(src, m, name="a")
    g.connect(m, sink, name="b")
    return g


def _spiked_injector():
    return FaultInjector([
        FaultEvent(FaultKind.DRAM_SPIKE, "dram_t", cycle=10, duration=40,
                   penalty=120),
        FaultEvent(FaultKind.TILE_STALL, "sink", cycle=120, duration=60),
    ])


CASES = [
    ("cyclic_countdown", _countdown_graph, None),
    ("divergent_fork_spill", _divergent_fork_graph, None),
    ("dram_gather", _dram_gather_graph, None),
    ("dram_gather_throttled", lambda: _dram_gather_graph(rate=1), None),
    ("spad_histogram", _hist_graph, None),
    ("mergesort_tree", _mergesort_graph, None),
    ("mergesort_tree_expr_key", _mergesort_expr_graph, None),
    ("fault_stalls", _stalled_map_graph, _stall_injector),
    ("fault_dram_spike", lambda: _dram_gather_graph(rate=2),
     _spiked_injector),
]


def _run(factory, injector_factory, scheduler, burst=False):
    inj = injector_factory() if injector_factory else None
    engine = Engine(factory(), injector=inj, scheduler=scheduler,
                    burst=burst)
    return engine.run(), inj


#: The four scheduling modes whose stats must be bit-identical.  The
#: "vector" scheduler is the event scheduler with saturated windows
#: lowered onto the columnar numpy backend; with an injector or tracer
#: armed its windows are vetoed and it degrades to per-cycle event
#: scheduling, which is exactly what these cases must confirm.
MODES = [("exhaustive", False), ("event", False), ("event", True),
         ("vector", True)]
MODE_IDS = ["exhaustive", "event", "event_burst", "vector"]


@pytest.mark.parametrize("name,factory,injector_factory",
                         CASES, ids=[c[0] for c in CASES])
def test_simstats_bit_identical(name, factory, injector_factory):
    golden, golden_inj = _run(factory, injector_factory, "exhaustive")
    for scheduler, burst in MODES[1:]:
        event, event_inj = _run(factory, injector_factory, scheduler,
                                burst=burst)
        assert event.cycles == golden.cycles
        assert event.tiles == golden.tiles
        assert event.scratchpads == golden.scratchpads
        assert event.dram == golden.dram
        assert event == golden      # full dataclass equality, belt-and-braces
        if golden_inj is not None:
            # First firings (what the log records) land at identical cycles.
            assert event_inj.log == golden_inj.log


@pytest.mark.parametrize("scheduler", ["event", "exhaustive"])
def test_results_identical_across_schedulers(scheduler):
    g = _countdown_graph()
    Engine(g, scheduler=scheduler).run()
    sink = g.tile("sink")
    assert sorted(sink.records) == sorted((i, 0) for i in range(200))


def test_unknown_scheduler_rejected():
    with pytest.raises(ValueError):
        Engine(_countdown_graph(), scheduler="speculative")


class TestErrorPathEquivalence:
    def _wedged(self):
        """A mis-wired loop that genuinely deadlocks."""
        g = Graph("loop")
        src = g.add(SourceTile("src", [(i, 0) for i in range(1024)]))
        merge = g.add(MergeTile("merge"))
        bump = g.add(MapTile("bump", lambda r: (r[0], r[1] + 1)))
        filt = g.add(FilterTile("filt", lambda r: r[1] < 16))
        sink = g.add(SinkTile("sink"))
        g.connect(src, merge)
        g.connect(merge, bump)
        g.connect(bump, filt)
        g.connect(filt, merge, producer_port=0, priority=False)
        g.connect(filt, sink, producer_port=1)
        return g

    def test_deadlock_raises_at_same_cycle_with_same_report(self):
        errors = {}
        for scheduler in ("exhaustive", "event"):
            with pytest.raises(SimulationError) as ei:
                Engine(self._wedged(), deadlock_window=2_000,
                       scheduler=scheduler).run()
            errors[scheduler] = ei.value
        assert errors["event"].cycle == errors["exhaustive"].cycle
        assert str(errors["event"]) == str(errors["exhaustive"])
        assert (errors["event"].stuck_tiles
                == errors["exhaustive"].stuck_tiles)

    def test_indefinite_stall_raises_stallerror_in_both(self):
        errors = {}
        for scheduler in ("exhaustive", "event"):
            inj = FaultInjector([FaultEvent(
                FaultKind.TILE_STALL, "m", cycle=5, duration=None)])
            with pytest.raises(StallError) as ei:
                Engine(_stalled_map_graph(), deadlock_window=500,
                       injector=inj, scheduler=scheduler).run()
            assert ei.value.site == "m"
            errors[scheduler] = ei.value
        assert errors["event"].cycle == errors["exhaustive"].cycle
        assert str(errors["event"]) == str(errors["exhaustive"])


def _fuzz_case(seed):
    """A seeded random pipeline plus its reference-interpreter output.

    Stages are drawn from {map, filter-with-drop, fork, spill} with random
    latencies, stream capacities, and source rates; ~a third of the graphs
    end in the canonical cyclic countdown block.  Every stage is mirrored
    by a pure function over the record list, so the expected sink multiset
    is computed independently of the simulator.
    """
    rng = random.Random(0xF0220000 + seed)
    n = rng.randrange(40, 161)
    base = [(i, rng.randrange(0, 50)) for i in range(n)]
    g = Graph(f"fuzz{seed}")
    prev = g.add(SourceTile("src", base, rate=rng.choice((1, 2, 4, 8, 16))))
    port = 0
    expected = list(base)
    for idx in range(rng.randrange(1, 5)):
        kind = rng.choice(("map", "filter", "fork", "spill"))
        if kind == "map":
            k = rng.randrange(1, 7)
            tile = g.add(MapTile(f"map{idx}",
                                 lambda r, k=k: (r[0], r[1] + k),
                                 latency=rng.randrange(1, 9)))
            expected = [(i, v + k) for i, v in expected]
        elif kind == "filter":
            m = rng.randrange(2, 5)
            tile = g.add(FilterTile(f"filt{idx}",
                                    lambda r, m=m: r[1] % m != 0,
                                    latency=rng.randrange(1, 9)))
            expected = [(i, v) for i, v in expected if v % m != 0]
        elif kind == "fork":
            m = rng.randrange(2, 4)
            tile = g.add(ForkTile(
                f"fork{idx}",
                lambda r, m=m: [(r[0], r[1] + j) for j in range(r[1] % m)]))
            expected = [(i, v + j)
                        for i, v in expected for j in range(v % m)]
        else:
            tile = g.add(SpillTile(f"spill{idx}",
                                   on_chip_capacity=rng.choice((8, 16, 32))))
        g.connect(prev, tile, producer_port=port,
                  capacity=rng.choice((2, 3, 4)))
        if kind == "filter":
            tile.drop_output(1)
        prev, port = tile, 0
    if rng.random() < 0.35:
        # Cyclic drain: decrement until 0, so every record exits as (i, 0).
        merge = g.add(MergeTile("loop_merge"))
        cond = g.add(FilterTile("loop_cond", lambda r: r[1] <= 0))
        dec = g.add(MapTile("loop_dec", lambda r: (r[0], r[1] - 1)))
        g.connect(prev, merge, producer_port=port)
        g.connect(merge, cond)
        g.connect(cond, dec, producer_port=1)
        g.connect(dec, merge, priority=True)
        prev, port = cond, 0
        expected = [(i, 0) for i, __ in expected]
    sink = g.add(SinkTile("sink"))
    g.connect(prev, sink, producer_port=port)
    return g, expected


@pytest.mark.parametrize("seed", range(50))
def test_fuzz_scheduler_parity_and_conservation(seed):
    """Four-way parity: exhaustive / event / burst / vector on random DAGs."""
    g_gold, expected = _fuzz_case(seed)
    golden = Engine(g_gold, scheduler="exhaustive").run()
    graphs = [g_gold]
    for scheduler, burst in MODES[1:]:
        g, expected_again = _fuzz_case(seed)
        stats = Engine(g, scheduler=scheduler, burst=burst).run()
        assert expected_again == expected   # the reference itself is seeded
        assert stats.cycles == golden.cycles
        assert stats == golden
        graphs.append(g)
    for g in graphs:
        # Thread conservation: exactly the records the reference
        # interpreter predicts arrive, nothing is lost in flight, and
        # every stream has drained and closed at quiescence.
        assert sorted(g.tile("sink").records) == sorted(expected)
        for stream in g.streams:
            assert stream.closed()
            assert stream.occupancy() == 0


@pytest.mark.parametrize("seed", range(0, 50, 5))
def test_fuzz_parity_with_hooks_and_deadlines(seed):
    """Fuzz parity under a tracer, a fault injector, and a cycle deadline.

    Burst never engages while a tracer or injector is armed (the engine
    falls back to per-cycle ticking), so these runs pin that ``burst=True``
    is byte-for-byte inert in hooked mode; the deadline runs additionally
    pin that a deadline fires at the identical cycle whether or not it
    clamps a burst window.
    """
    from repro.observability import Tracer
    from repro.serving import CancelToken
    from repro.errors import DeadlineExceeded

    # Traced: burst=True must change nothing with a tracer armed.
    g_ref, __ = _fuzz_case(seed)
    ref = Engine(g_ref, scheduler="event", burst=False,
                 tracer=Tracer()).run()
    g_b, __ = _fuzz_case(seed)
    traced = Engine(g_b, scheduler="event", burst=True,
                    tracer=Tracer()).run()
    assert traced == ref

    # Fault-injected: an injected stall likewise disables burst.
    def inj():
        return FaultInjector([FaultEvent(FaultKind.TILE_STALL, "sink",
                                         cycle=7, duration=9)])
    golden, gi = _run(lambda: _fuzz_case(seed)[0], inj, "exhaustive")
    for scheduler, burst in MODES[1:]:
        stats, si = _run(lambda: _fuzz_case(seed)[0], inj, scheduler,
                         burst=burst)
        assert stats == golden
        assert si.log == gi.log

    # Deadline mid-run: identical error cycle across all four modes.
    full = Engine(_fuzz_case(seed)[0]).run().cycles
    deadline = max(2, full // 2)
    for scheduler, burst in MODES:
        tok = CancelToken(deadline_cycle=deadline)
        with pytest.raises(DeadlineExceeded) as ei:
            Engine(_fuzz_case(seed)[0], scheduler=scheduler, burst=burst,
                   cancel=tok).run()
        assert ei.value.cycle == deadline
        assert tok.fired_at == deadline


class TestBurstWindowBoundaries:
    """Unit tests for the edges of burst windows.

    Each case builds a steady-state graph where a specific boundary
    condition lands at (or truncates) a window edge, asserts bit-identical
    stats against ``burst=False``, and — where the shape guarantees it —
    that a burst window actually committed, so the fast path cannot
    silently stop engaging.
    """

    def _relay_chain(self, n_requests, latency=None):
        g = Graph("chain")
        mem = DramMemory("dram", capacity_words=4096)
        data = mem.region("data", 1024, 1, fill=0)
        for i in range(1024):
            data[i] = i * 5
        src = g.add(SourceTile("src", [((i * 37) % 1024,)
                                       for i in range(n_requests)], rate=1))
        kwargs = {} if latency is None else {"latency": latency}
        dram = g.add(DramTile("relay", mem, [PortConfig(
            mode="read", region=data, addr=lambda r: r[0],
            combine=lambda r, v: (r[0], v))], **kwargs))
        sink = g.add(SinkTile("sink"))
        g.connect(src, dram)
        g.connect(dram, sink)
        return g

    def _parity(self, factory, cancel_deadline=None):
        """Run burst-off vs burst-on; return the burst engine."""
        from repro.serving import CancelToken
        ref_tok = (CancelToken(deadline_cycle=cancel_deadline)
                   if cancel_deadline else None)
        ref = Engine(factory(), burst=False, cancel=ref_tok)
        tok = (CancelToken(deadline_cycle=cancel_deadline)
               if cancel_deadline else None)
        eng = Engine(factory(), burst=True, cancel=tok)
        ref_stats = ref.run()
        stats = eng.run()
        assert stats == ref_stats
        return eng

    def test_eos_truncation(self):
        """The window is capped one vector short of source exhaustion, so
        the EOS transition (close + final vector) runs under real ticks."""
        for n_requests in (64, 65, 200):
            eng = self._parity(lambda n=n_requests: self._relay_chain(n))
            assert eng.burst_windows, "group burst never engaged"
            total = sum(eng.burst_windows["SourceTile"])
            assert total < n_requests   # at least the EOS cycle ticked

    def test_dram_retirement_mid_window(self):
        """With DRAM latency far below the window length, grants issued
        inside the window retire inside it too (delay-line wraparound)."""
        eng = self._parity(lambda: self._relay_chain(400))
        windows = eng.burst_windows.get("DramTile", [])
        assert windows and max(windows) > 100   # > DRAM_LATENCY

    def test_deadline_clamps_window(self):
        """A deadline inside what would be one long window must fire at
        the identical cycle with and without burst."""
        from repro.errors import DeadlineExceeded
        for deadline in (100, 137, 301):
            with pytest.raises(DeadlineExceeded) as e_ref:
                Engine(self._relay_chain(400), burst=False,
                       cancel=__import__("repro.serving",
                                         fromlist=["CancelToken"])
                       .CancelToken(deadline_cycle=deadline)).run()
            with pytest.raises(DeadlineExceeded) as e_burst:
                Engine(self._relay_chain(400), burst=True,
                       cancel=__import__("repro.serving",
                                         fromlist=["CancelToken"])
                       .CancelToken(deadline_cycle=deadline)).run()
            assert e_burst.value.cycle == e_ref.value.cycle == deadline

    def test_credit_exhaustion_at_exactly_b(self):
        """Two chains with different source lengths: the window length is
        the minimum producer credit, exhausted at exactly ``b``."""
        def factory():
            g = Graph("two")
            a = g.add(SourceTile("a", [(i,) for i in range(300)], rate=1))
            asink = g.add(SinkTile("asink"))
            b = g.add(SourceTile("b", [(i,) for i in range(40)], rate=1))
            bsink = g.add(SinkTile("bsink"))
            g.connect(a, asink)
            g.connect(b, bsink)
            return g
        eng = self._parity(factory)
        assert eng.burst_windows, "group burst never engaged"
        # Every committed window is clamped by the shorter producer's
        # remaining credit — never past its one-short-of-EOS cap.
        caps = eng.burst_windows["SourceTile"]
        assert all(w <= 300 for w in caps)

    def test_saturated_window_parity(self):
        """Many parallel ready chains trigger the fabric-wide window."""
        def factory():
            g = Graph("wide")
            for c in range(6):
                src = g.add(SourceTile(
                    f"src{c}", [(i, c) for i in range(600)]))
                m = g.add(MapTile(f"m{c}", lambda r: (r[0] + 1, r[1])))
                sink = g.add(SinkTile(f"sink{c}"))
                g.connect(src, m)
                g.connect(m, sink)
            return g
        eng = self._parity(factory)
        assert "fabric" in eng.burst_windows
        assert sum(eng.burst_windows["fabric"]) > 8

    def test_no_burst_flag_disables_windows(self):
        g = self._relay_chain(200)
        eng = Engine(g, burst=False)
        eng.run()
        assert eng.burst_windows == {}


class TestOverrunSemantics:
    """Pins the fixed overrun check: exactly ``max_cycles`` rounds run."""

    def _endless(self):
        g = Graph("tiny")
        src = g.add(SourceTile("src", [(i,) for i in range(10_000)]))
        sink = g.add(SinkTile("sink"))
        g.connect(src, sink)
        return g, src

    def test_exactly_max_cycles_tick_rounds(self):
        g, src = self._endless()
        seen = []
        orig = src.tick
        src.tick = lambda cycle: (seen.append(cycle), orig(cycle))[1]
        with pytest.raises(SimulationError) as ei:
            Engine(g, max_cycles=10, scheduler="exhaustive").run()
        assert ei.value.kind == "overrun"
        assert ei.value.cycle == 10
        assert seen == list(range(10))    # rounds 0..9, not 0..10

    def test_overrun_cycle_matches_across_schedulers(self):
        for scheduler in ("exhaustive", "event"):
            g, __ = self._endless()
            with pytest.raises(SimulationError) as ei:
                Engine(g, max_cycles=10, scheduler=scheduler).run()
            assert ei.value.kind == "overrun"
            assert ei.value.cycle == 10

    def test_sufficient_budget_is_not_tripped(self):
        # A graph that finishes at exactly its budget must not raise.
        g, __ = self._endless()
        cycles = Engine(g).run().cycles
        for scheduler in ("exhaustive", "event"):
            g2, __ = self._endless()
            stats = Engine(g2, max_cycles=cycles,
                           scheduler=scheduler).run()
            assert stats.cycles == cycles
