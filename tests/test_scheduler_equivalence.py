"""Golden equivalence suite: event-driven vs exhaustive scheduler.

The event-driven ready-set scheduler (``Engine(scheduler="event")``) is a
wall-clock optimisation of the simulator, not a model change: simulated
cycle counts and every ``SimStats`` field must be **bit-identical** to the
exhaustive tick-everything loop on every graph shape — cyclic, divergent,
DRAM-bound, memory-pipeline, and with a ``FaultInjector`` armed.

Each factory builds a *fresh* graph (and, where applicable, a fresh
injector with an identical schedule) per run so the two schedulers never
share mutable state.
"""

import random

import pytest

from repro.dataflow import (
    Engine,
    FilterTile,
    ForkTile,
    Graph,
    MapTile,
    MergeTile,
    SinkTile,
    SourceTile,
)
from repro.dataflow.mergesort import merge_sort_graph
from repro.errors import SimulationError, StallError
from repro.memory import DramMemory, ScratchpadMemory
from repro.memory.dram import DramTile
from repro.memory.spad_tile import PortConfig, ScratchpadTile
from repro.reliability import FaultEvent, FaultInjector, FaultKind
from repro.structures.spill import SpillTile


def _countdown_graph():
    """The canonical while-loop dataflow of fig. 5a: decrement until 0."""
    g = Graph("loop")
    src = g.add(SourceTile("src", [(i, i % 9) for i in range(200)]))
    merge = g.add(MergeTile("merge"))
    cond = g.add(FilterTile("cond", lambda r: r[1] <= 0))
    dec = g.add(MapTile("dec", lambda r: (r[0], r[1] - 1)))
    sink = g.add(SinkTile("sink"))
    g.connect(src, merge)
    g.connect(merge, cond)
    g.connect(cond, sink, producer_port=0)
    g.connect(cond, dec, producer_port=1)
    g.connect(dec, merge, priority=True)
    return g


def _divergent_fork_graph():
    """Fork-amplified divergence through a spill queue (tree-walk shape)."""
    g = Graph("fork")
    src = g.add(SourceTile("src", [(i,) for i in range(64)], rate=4))
    fork = g.add(ForkTile(
        "fork", lambda r: [(r[0], j) for j in range(r[0] % 5)]))
    spill = g.add(SpillTile("spill", on_chip_capacity=16))
    keep = g.add(FilterTile("keep", lambda r: (r[0] + r[1]) % 3 != 0))
    sink = g.add(SinkTile("sink"))
    g.connect(src, fork)
    g.connect(fork, spill)
    g.connect(spill, keep)
    g.connect(keep, sink, producer_port=0)
    keep.drop_output(1)
    return g


def _dram_gather_graph(rate=16):
    """DRAM gather; a throttled source leaves the fabric latency-bound."""
    g = Graph("gather")
    mem = DramMemory("dram", capacity_words=4096)
    data = mem.region("data", 1024, 1, fill=0)
    for i in range(1024):
        data[i] = i * 3
    src = g.add(SourceTile("src", [((i * 37) % 1024,) for i in range(256)],
                           rate=rate))
    dram = g.add(DramTile("dram_t", mem, [PortConfig(
        mode="read", region=data, addr=lambda r: r[0],
        combine=lambda r, v: (r[0], v))]))
    sink = g.add(SinkTile("sink"))
    g.connect(src, dram, name="reqs")
    g.connect(dram, sink, name="resps")
    return g


def _hist_graph():
    """Scratchpad RMW histogram (bank conflicts + rmw forwarding)."""
    g = Graph("hist")
    mem = ScratchpadMemory("mem")
    counts = mem.region("counts", 64, 1, fill=0)
    src = g.add(SourceTile("src", [(i % 64,) for i in range(512)]))
    g.add(ScratchpadTile("spad", mem, [PortConfig(
        mode="rmw", region=counts, addr=lambda r: r[0],
        rmw=lambda old, r: (old + 1, old + 1),
        combine=lambda r, res: None)]))
    g.connect(g.tile("src"), g.tile("spad"), name="reqs")
    return g


def _mergesort_graph():
    runs = [sorted((i * 7 + k) % 100 for i in range(40))
            for k in range(4)]
    return merge_sort_graph("msort", [[(v,) for v in run] for run in runs],
                            key=lambda r: r[0])


def _stall_injector():
    return FaultInjector([
        FaultEvent(FaultKind.TILE_STALL, "m", cycle=4, duration=13),
        FaultEvent(FaultKind.TILE_STALL, "sink", cycle=30, duration=7),
    ])


def _stalled_map_graph():
    g = Graph("g")
    src = g.add(SourceTile("src", [(i,) for i in range(256)]))
    m = g.add(MapTile("m", lambda r: (r[0] * 2,)))
    sink = g.add(SinkTile("sink"))
    g.connect(src, m, name="a")
    g.connect(m, sink, name="b")
    return g


def _spiked_injector():
    return FaultInjector([
        FaultEvent(FaultKind.DRAM_SPIKE, "dram_t", cycle=10, duration=40,
                   penalty=120),
        FaultEvent(FaultKind.TILE_STALL, "sink", cycle=120, duration=60),
    ])


CASES = [
    ("cyclic_countdown", _countdown_graph, None),
    ("divergent_fork_spill", _divergent_fork_graph, None),
    ("dram_gather", _dram_gather_graph, None),
    ("dram_gather_throttled", lambda: _dram_gather_graph(rate=1), None),
    ("spad_histogram", _hist_graph, None),
    ("mergesort_tree", _mergesort_graph, None),
    ("fault_stalls", _stalled_map_graph, _stall_injector),
    ("fault_dram_spike", lambda: _dram_gather_graph(rate=2),
     _spiked_injector),
]


def _run(factory, injector_factory, scheduler):
    inj = injector_factory() if injector_factory else None
    engine = Engine(factory(), injector=inj, scheduler=scheduler)
    return engine.run(), inj


@pytest.mark.parametrize("name,factory,injector_factory",
                         CASES, ids=[c[0] for c in CASES])
def test_simstats_bit_identical(name, factory, injector_factory):
    golden, golden_inj = _run(factory, injector_factory, "exhaustive")
    event, event_inj = _run(factory, injector_factory, "event")
    assert event.cycles == golden.cycles
    assert event.tiles == golden.tiles
    assert event.scratchpads == golden.scratchpads
    assert event.dram == golden.dram
    assert event == golden          # full dataclass equality, belt-and-braces
    if golden_inj is not None:
        # First firings (what the log records) land at identical cycles.
        assert event_inj.log == golden_inj.log


@pytest.mark.parametrize("scheduler", ["event", "exhaustive"])
def test_results_identical_across_schedulers(scheduler):
    g = _countdown_graph()
    Engine(g, scheduler=scheduler).run()
    sink = g.tile("sink")
    assert sorted(sink.records) == sorted((i, 0) for i in range(200))


def test_unknown_scheduler_rejected():
    with pytest.raises(ValueError):
        Engine(_countdown_graph(), scheduler="speculative")


class TestErrorPathEquivalence:
    def _wedged(self):
        """A mis-wired loop that genuinely deadlocks."""
        g = Graph("loop")
        src = g.add(SourceTile("src", [(i, 0) for i in range(1024)]))
        merge = g.add(MergeTile("merge"))
        bump = g.add(MapTile("bump", lambda r: (r[0], r[1] + 1)))
        filt = g.add(FilterTile("filt", lambda r: r[1] < 16))
        sink = g.add(SinkTile("sink"))
        g.connect(src, merge)
        g.connect(merge, bump)
        g.connect(bump, filt)
        g.connect(filt, merge, producer_port=0, priority=False)
        g.connect(filt, sink, producer_port=1)
        return g

    def test_deadlock_raises_at_same_cycle_with_same_report(self):
        errors = {}
        for scheduler in ("exhaustive", "event"):
            with pytest.raises(SimulationError) as ei:
                Engine(self._wedged(), deadlock_window=2_000,
                       scheduler=scheduler).run()
            errors[scheduler] = ei.value
        assert errors["event"].cycle == errors["exhaustive"].cycle
        assert str(errors["event"]) == str(errors["exhaustive"])
        assert (errors["event"].stuck_tiles
                == errors["exhaustive"].stuck_tiles)

    def test_indefinite_stall_raises_stallerror_in_both(self):
        errors = {}
        for scheduler in ("exhaustive", "event"):
            inj = FaultInjector([FaultEvent(
                FaultKind.TILE_STALL, "m", cycle=5, duration=None)])
            with pytest.raises(StallError) as ei:
                Engine(_stalled_map_graph(), deadlock_window=500,
                       injector=inj, scheduler=scheduler).run()
            assert ei.value.site == "m"
            errors[scheduler] = ei.value
        assert errors["event"].cycle == errors["exhaustive"].cycle
        assert str(errors["event"]) == str(errors["exhaustive"])


def _fuzz_case(seed):
    """A seeded random pipeline plus its reference-interpreter output.

    Stages are drawn from {map, filter-with-drop, fork, spill} with random
    latencies, stream capacities, and source rates; ~a third of the graphs
    end in the canonical cyclic countdown block.  Every stage is mirrored
    by a pure function over the record list, so the expected sink multiset
    is computed independently of the simulator.
    """
    rng = random.Random(0xF0220000 + seed)
    n = rng.randrange(40, 161)
    base = [(i, rng.randrange(0, 50)) for i in range(n)]
    g = Graph(f"fuzz{seed}")
    prev = g.add(SourceTile("src", base, rate=rng.choice((1, 2, 4, 8, 16))))
    port = 0
    expected = list(base)
    for idx in range(rng.randrange(1, 5)):
        kind = rng.choice(("map", "filter", "fork", "spill"))
        if kind == "map":
            k = rng.randrange(1, 7)
            tile = g.add(MapTile(f"map{idx}",
                                 lambda r, k=k: (r[0], r[1] + k),
                                 latency=rng.randrange(1, 9)))
            expected = [(i, v + k) for i, v in expected]
        elif kind == "filter":
            m = rng.randrange(2, 5)
            tile = g.add(FilterTile(f"filt{idx}",
                                    lambda r, m=m: r[1] % m != 0,
                                    latency=rng.randrange(1, 9)))
            expected = [(i, v) for i, v in expected if v % m != 0]
        elif kind == "fork":
            m = rng.randrange(2, 4)
            tile = g.add(ForkTile(
                f"fork{idx}",
                lambda r, m=m: [(r[0], r[1] + j) for j in range(r[1] % m)]))
            expected = [(i, v + j)
                        for i, v in expected for j in range(v % m)]
        else:
            tile = g.add(SpillTile(f"spill{idx}",
                                   on_chip_capacity=rng.choice((8, 16, 32))))
        g.connect(prev, tile, producer_port=port,
                  capacity=rng.choice((2, 3, 4)))
        if kind == "filter":
            tile.drop_output(1)
        prev, port = tile, 0
    if rng.random() < 0.35:
        # Cyclic drain: decrement until 0, so every record exits as (i, 0).
        merge = g.add(MergeTile("loop_merge"))
        cond = g.add(FilterTile("loop_cond", lambda r: r[1] <= 0))
        dec = g.add(MapTile("loop_dec", lambda r: (r[0], r[1] - 1)))
        g.connect(prev, merge, producer_port=port)
        g.connect(merge, cond)
        g.connect(cond, dec, producer_port=1)
        g.connect(dec, merge, priority=True)
        prev, port = cond, 0
        expected = [(i, 0) for i, __ in expected]
    sink = g.add(SinkTile("sink"))
    g.connect(prev, sink, producer_port=port)
    return g, expected


@pytest.mark.parametrize("seed", range(50))
def test_fuzz_scheduler_parity_and_conservation(seed):
    g_gold, expected = _fuzz_case(seed)
    golden = Engine(g_gold, scheduler="exhaustive").run()
    g_event, expected_again = _fuzz_case(seed)
    event = Engine(g_event, scheduler="event").run()
    assert expected_again == expected   # the reference itself is seeded
    assert event.cycles == golden.cycles
    assert event == golden
    for g in (g_gold, g_event):
        # Thread conservation: exactly the records the reference
        # interpreter predicts arrive, nothing is lost in flight, and
        # every stream has drained and closed at quiescence.
        assert sorted(g.tile("sink").records) == sorted(expected)
        for stream in g.streams:
            assert stream.closed()
            assert stream.occupancy() == 0


class TestOverrunSemantics:
    """Pins the fixed overrun check: exactly ``max_cycles`` rounds run."""

    def _endless(self):
        g = Graph("tiny")
        src = g.add(SourceTile("src", [(i,) for i in range(10_000)]))
        sink = g.add(SinkTile("sink"))
        g.connect(src, sink)
        return g, src

    def test_exactly_max_cycles_tick_rounds(self):
        g, src = self._endless()
        seen = []
        orig = src.tick
        src.tick = lambda cycle: (seen.append(cycle), orig(cycle))[1]
        with pytest.raises(SimulationError) as ei:
            Engine(g, max_cycles=10, scheduler="exhaustive").run()
        assert ei.value.kind == "overrun"
        assert ei.value.cycle == 10
        assert seen == list(range(10))    # rounds 0..9, not 0..10

    def test_overrun_cycle_matches_across_schedulers(self):
        for scheduler in ("exhaustive", "event"):
            g, __ = self._endless()
            with pytest.raises(SimulationError) as ei:
                Engine(g, max_cycles=10, scheduler=scheduler).run()
            assert ei.value.kind == "overrun"
            assert ei.value.cycle == 10

    def test_sufficient_budget_is_not_tripped(self):
        # A graph that finishes at exactly its budget must not raise.
        g, __ = self._endless()
        cycles = Engine(g).run().cycles
        for scheduler in ("exhaustive", "event"):
            g2, __ = self._endless()
            stats = Engine(g2, max_cycles=cycles,
                           scheduler=scheduler).run()
            assert stats.cycles == cycles
