"""Baseline models: CPU rates, GPU rates, SIMT divergence simulation, and
the Gorgon operator substitutions."""

import random

import pytest

from repro.baselines import (
    CpuModel,
    GorgonModel,
    GpuModel,
    SimtHashJoin,
    gorgon_equijoin,
    gorgon_range_scan,
    gorgon_spatial_join,
    table1_report,
    table1_rows,
)
from repro.db import ExecutionContext, Table
from repro.db.operators import hash_join
from repro.perf import CostModel, kernels


def _joined_ctx(n=300, seed=50, key_space=None):
    rng = random.Random(seed)
    ks = key_space or max(40, n // 4)
    left = Table.from_columns("l", k=[rng.randrange(ks) for __ in range(n)])
    right = Table.from_columns("r", k=[rng.randrange(ks) for __ in range(n)])
    ctx = ExecutionContext()
    hash_join(left, right, "k", "k", ctx)
    return ctx


class TestCpuModel:
    def test_runtime_positive(self):
        assert CpuModel().query_runtime(_joined_ctx()) > 0

    def test_cpu_slower_than_aurochs(self):
        # The constant-factor gap emerges once the workload amortizes
        # fixed per-operator overheads.
        ctx = _joined_ctx(n=20_000)
        cpu = CpuModel().query_runtime(ctx)
        aurochs = CostModel(parallel_streams=8).query_runtime(ctx)
        assert cpu > 10 * aurochs

    def test_sorting_pays_log_factor(self):
        ctx = ExecutionContext()
        ctx.trace("sort", 10 ** 6, 10 ** 6)
        ctx2 = ExecutionContext()
        ctx2.trace("filter", 10 ** 6, 10 ** 6)
        m = CpuModel()
        assert m.query_runtime(ctx) > m.query_runtime(ctx2)

    def test_nested_loop_uses_pair_count(self):
        from repro.structures.common import StructureEvents
        ctx = ExecutionContext()
        ctx.trace("nested_loop_join", 2000, 10,
                  StructureEvents(records_processed=10 ** 6))
        ctx2 = ExecutionContext()
        ctx2.trace("nested_loop_join", 2000, 10)
        m = CpuModel()
        assert m.query_runtime(ctx) > m.query_runtime(ctx2)


class TestGpuModel:
    def test_join_priced_at_published_rate(self):
        ctx = ExecutionContext()
        ctx.trace("hash_join", 10 ** 8, 10 ** 8)
        m = GpuModel()
        # 1e8 rows x 8 B at 4.5 GB/s ~ 0.18 s (§V-B's measured rate).
        t = m.trace_seconds(ctx.traces[0])
        assert t == pytest.approx(10 ** 8 * 8 / 4.5e9)

    def test_nested_loop_is_brute_force(self):
        from repro.structures.common import StructureEvents
        ctx = ExecutionContext()
        ctx.trace("nested_loop_join", 2000, 100,
                  StructureEvents(records_processed=10 ** 6))
        t = GpuModel().trace_seconds(ctx.traces[0])
        assert t == pytest.approx(10 ** 6 / 2.0e9)

    def test_index_scan_uses_prebuilt_index(self):
        # §V-B gives the GPU pre-built indices on materialized tables, so
        # a narrow range costs output gathering, not a full-table scan.
        ctx = ExecutionContext()
        ctx.trace("index_range_scan", 10 ** 7, 100)
        narrow = GpuModel().trace_seconds(ctx.traces[0])
        ctx.trace("index_range_scan", 10 ** 7, 10 ** 6)
        wide = GpuModel().trace_seconds(ctx.traces[1])
        assert narrow < wide
        assert narrow < 10 ** 7 * 8 / 900e9  # cheaper than a full scan

    def test_spatial_join_uses_prebuilt_index_rate(self):
        ctx = ExecutionContext()
        ctx.trace("distance_join", 20_000, 100,
                  meta={"left": 10_000, "right": 10_000})
        t = GpuModel().trace_seconds(ctx.traces[0])
        from repro.perf.params import GPU
        assert t == pytest.approx(20_000 / GPU.spatial_probe_per_s)

    def test_launch_overhead_floor(self):
        ctx = ExecutionContext()
        for __ in range(10):
            ctx.trace("filter", 1, 1)
        assert GpuModel().query_runtime(ctx) >= 10 * 5e-6


class TestSimt:
    def _data(self, n=1 << 13, seed=51):
        rng = random.Random(seed)
        table = [rng.randrange(1 << 30) for __ in range(n)]
        probes = [rng.choice(table) if rng.random() < 0.8
                  else rng.randrange(1 << 30) for __ in range(n)]
        return table, probes, n

    def test_build_efficiency_band(self):
        table, __, n = self._data()
        eff = SimtHashJoin().build(table, n).warp_efficiency
        # Paper measures 62%; the mechanism should land in its vicinity.
        assert 0.45 < eff < 0.8

    def test_probe_efficiency_band(self):
        table, probes, n = self._data()
        eff = SimtHashJoin().probe(probes, table, n).warp_efficiency
        # Paper measures 46%.
        assert 0.3 < eff < 0.6

    def test_probe_worse_than_build(self):
        table, probes, n = self._data()
        sim = SimtHashJoin()
        assert (sim.probe(probes, table, n).warp_efficiency
                < sim.build(table, n).warp_efficiency)

    def test_block_barrier_hurts(self):
        table, probes, n = self._data()
        free = SimtHashJoin(block_barrier=False).probe(probes, table, n)
        barrier = SimtHashJoin(block_barrier=True).probe(probes, table, n)
        assert barrier.warp_efficiency < free.warp_efficiency

    def test_uniform_work_is_fully_efficient(self):
        # Keys spread one-per-bucket -> no divergence -> ~100% efficiency.
        n = 1 << 10
        sim = SimtHashJoin()
        stats = sim.probe(list(range(n)), [], n)
        assert stats.warp_efficiency == pytest.approx(1.0)

    def test_more_contention_lowers_build_efficiency(self):
        table, __, n = self._data()
        few_buckets = SimtHashJoin().build(table, n // 16).warp_efficiency
        many_buckets = SimtHashJoin().build(table, n * 4).warp_efficiency
        assert few_buckets < many_buckets


class TestGorgon:
    def test_sort_join_slower_than_hash_at_scale(self):
        g = GorgonModel(parallel_streams=8)
        aurochs = CostModel(parallel_streams=8)
        n = 10 ** 8
        assert (g.join_seconds(n, n)
                > aurochs.runtime_seconds(kernels.hash_join_events(n, n)))

    def test_nested_loop_far_slower_than_presort(self):
        g = GorgonModel()
        assert (g.spatial_join_seconds(10 ** 5, 10 ** 6, nested_loop=True)
                > 10 * g.spatial_join_seconds(10 ** 5, 10 ** 6))

    def test_range_scan_linear(self):
        g = GorgonModel()
        assert (g.range_query_seconds(10 ** 8)
                == pytest.approx(100 * g.range_query_seconds(10 ** 6),
                                 rel=0.2))

    def test_gorgon_operators_match_aurochs_semantics(self):
        rng = random.Random(52)
        left = Table.from_columns(
            "l", k=[rng.randrange(10) for __ in range(50)])
        right = Table.from_columns(
            "r", k=[rng.randrange(10) for __ in range(50)])
        a = hash_join(left, right, "k", "k")
        b = gorgon_equijoin(left, right, "k", "k")
        assert sorted(a.rows) == sorted(b.rows)

    def test_gorgon_spatial_join_semantics(self):
        pts = Table.from_columns("p", x=[0, 5, 100], y=[0, 5, 100])
        out = gorgon_spatial_join(
            pts, pts, lambda a, b: abs(a[0] - b[0]) <= 10)
        assert len(out) == 5  # 2x2 close pairs + the far self-pair

    def test_gorgon_range_scan_semantics(self):
        t = Table.from_columns("t", time=list(range(100)))
        out = gorgon_range_scan(t, "time", 10, 19)
        assert len(out) == 10


class TestTable1:
    def test_three_platforms(self):
        assert len(table1_rows()) == 3

    def test_report_mentions_key_specs(self):
        text = table1_report()
        assert "GPU" in text and "20x20" in text and "HBM" in text
