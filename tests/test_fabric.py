"""Tile placement on the fabric grid."""

import pytest

from repro.dataflow import run_graph
from repro.errors import PlanError
from repro.fabric import GRID_SIDE, GridPlacer, Placement, placement_report
from repro.structures import HashTableDataflow


def _probe_graph(n=64):
    ht = HashTableDataflow(n_buckets=16, spad_node_capacity=64)
    ht.load([(k % 16, k) for k in range(32)])
    return ht.probe_graph([(q, q % 20) for q in range(n)], emit_all=False)


class TestGridPlacer:
    def test_all_tiles_placed_uniquely(self):
        g = _probe_graph()
        placement = GridPlacer().place(g)
        coords = list(placement.coords.values())
        assert len(coords) == len(g.tiles)
        assert len(set(coords)) == len(coords)

    def test_coords_on_grid(self):
        placement = GridPlacer().place(_probe_graph())
        for x, y in placement.coords.values():
            assert 0 <= x < GRID_SIDE and 0 <= y < GRID_SIDE

    def test_every_stream_has_hops(self):
        g = _probe_graph()
        placement = GridPlacer().place(g)
        assert set(placement.hops) == {s.name for s in g.streams}

    def test_connected_tiles_stay_close(self):
        g = _probe_graph()
        placement = GridPlacer().place(g)
        # Greedy adjacency placement: the pipeline should not scatter —
        # mean hop count stays small on an (almost) linear graph.
        mean_hops = placement.total_wire_length / len(placement.hops)
        assert mean_hops < 4

    def test_placement_is_deterministic(self):
        a = GridPlacer().place(_probe_graph())
        b = GridPlacer().place(_probe_graph())
        assert a.coords == b.coords

    def test_over_capacity_rejected(self):
        g = _probe_graph()
        with pytest.raises(PlanError):
            GridPlacer(side=2).place(g)

    def test_placed_graph_still_executes(self):
        # Placement is analysis-only: the graph remains runnable.
        g = _probe_graph(32)
        GridPlacer().place(g)
        stats = run_graph(g)
        assert stats.cycles > 0

    def test_report_renders(self):
        g = _probe_graph()
        text = placement_report(g, GridPlacer().place(g))
        assert "wire length" in text


class TestPlacementStats:
    def test_empty_placement(self):
        p = Placement()
        assert p.total_wire_length == 0
        assert p.max_hops == 0

    def test_bisection_fraction_small_for_one_kernel(self):
        g = _probe_graph()
        placement = GridPlacer().place(g)
        # One kernel at line rate uses a tiny slice of 5.1 TB/s.
        frac = placement.bisection_traffic_fraction(1e9)
        assert 0 < frac < 0.5


class TestShardPlacement:
    """PR 6 satellite: rendezvous shard->replica placement — the serving
    tier's determinism and minimal-disruption guarantees."""

    def test_same_seed_and_fleet_is_identical(self):
        from repro.fabric import place_shards
        assert (place_shards(8, [0, 1, 2, 3], seed=7)
                == place_shards(8, [0, 1, 2, 3], seed=7))

    def test_replica_order_does_not_matter(self):
        from repro.fabric import place_shards
        assert (place_shards(8, [3, 1, 0, 2], seed=7)
                == place_shards(8, [0, 1, 2, 3], seed=7))

    def test_assignments_land_in_the_pool(self):
        from repro.fabric import place_shards
        fleet = [0, 2, 5]
        assert set(place_shards(12, fleet, seed=3)) <= set(fleet)

    def test_quarantine_moves_only_the_lost_replicas_shards(self):
        from repro.fabric import place_shards, placement_moves
        fleet = list(range(6))
        before = place_shards(32, fleet, seed=9)
        victim = before[0]                     # owns at least shard 0
        after = place_shards(
            32, [r for r in fleet if r != victim], seed=9)
        moved = placement_moves(before, after)
        # Exactly the victim's shards move; nobody else is disrupted.
        assert set(moved) == {s for s, r in enumerate(before)
                              if r == victim}
        assert all(after[s] != victim for s in moved)

    def test_regrowth_rebalances_only_onto_the_newcomer(self):
        from repro.fabric import place_shards, placement_moves
        fleet = list(range(6))
        before = place_shards(32, fleet, seed=9)
        shrunk = place_shards(32, fleet[:-1], seed=9)
        regrown = place_shards(32, fleet, seed=9)
        # Reviving the replica restores the original placement, and the
        # rebalance moves only the shards the newcomer wins back.
        assert regrown == before
        moved = placement_moves(shrunk, regrown)
        assert moved
        assert all(regrown[s] == fleet[-1] for s in moved)

    def test_empty_pool_is_a_plan_error(self):
        from repro.fabric import place_shards
        with pytest.raises(PlanError):
            place_shards(4, [], seed=0)

    def test_negative_shard_count_is_a_plan_error(self):
        from repro.fabric import place_shards
        with pytest.raises(PlanError):
            place_shards(-1, [0], seed=0)

    def test_zero_shards_is_an_empty_placement(self):
        from repro.fabric import place_shards
        assert place_shards(0, [0, 1], seed=0) == []

    def test_mismatched_placements_cannot_be_diffed(self):
        from repro.fabric import placement_moves
        with pytest.raises(PlanError):
            placement_moves([0, 1], [0])

    def test_shard_score_is_a_pure_deterministic_function(self):
        from repro.fabric import shard_score
        assert shard_score(1, 2, 3) == shard_score(1, 2, 3)
        scores = {shard_score(1, s, r) for s in range(8) for r in range(8)}
        assert len(scores) == 64           # 64-bit mixing: no collisions
