"""Tile placement on the fabric grid."""

import pytest

from repro.dataflow import run_graph
from repro.errors import PlanError
from repro.fabric import GRID_SIDE, GridPlacer, Placement, placement_report
from repro.structures import HashTableDataflow


def _probe_graph(n=64):
    ht = HashTableDataflow(n_buckets=16, spad_node_capacity=64)
    ht.load([(k % 16, k) for k in range(32)])
    return ht.probe_graph([(q, q % 20) for q in range(n)], emit_all=False)


class TestGridPlacer:
    def test_all_tiles_placed_uniquely(self):
        g = _probe_graph()
        placement = GridPlacer().place(g)
        coords = list(placement.coords.values())
        assert len(coords) == len(g.tiles)
        assert len(set(coords)) == len(coords)

    def test_coords_on_grid(self):
        placement = GridPlacer().place(_probe_graph())
        for x, y in placement.coords.values():
            assert 0 <= x < GRID_SIDE and 0 <= y < GRID_SIDE

    def test_every_stream_has_hops(self):
        g = _probe_graph()
        placement = GridPlacer().place(g)
        assert set(placement.hops) == {s.name for s in g.streams}

    def test_connected_tiles_stay_close(self):
        g = _probe_graph()
        placement = GridPlacer().place(g)
        # Greedy adjacency placement: the pipeline should not scatter —
        # mean hop count stays small on an (almost) linear graph.
        mean_hops = placement.total_wire_length / len(placement.hops)
        assert mean_hops < 4

    def test_placement_is_deterministic(self):
        a = GridPlacer().place(_probe_graph())
        b = GridPlacer().place(_probe_graph())
        assert a.coords == b.coords

    def test_over_capacity_rejected(self):
        g = _probe_graph()
        with pytest.raises(PlanError):
            GridPlacer(side=2).place(g)

    def test_placed_graph_still_executes(self):
        # Placement is analysis-only: the graph remains runnable.
        g = _probe_graph(32)
        GridPlacer().place(g)
        stats = run_graph(g)
        assert stats.cycles > 0

    def test_report_renders(self):
        g = _probe_graph()
        text = placement_report(g, GridPlacer().place(g))
        assert "wire length" in text


class TestPlacementStats:
    def test_empty_placement(self):
        p = Placement()
        assert p.total_wire_length == 0
        assert p.max_hops == 0

    def test_bisection_fraction_small_for_one_kernel(self):
        g = _probe_graph()
        placement = GridPlacer().place(g)
        # One kernel at line rate uses a tiny slice of 5.1 TB/s.
        frac = placement.bisection_traffic_fraction(1e9)
        assert 0 < frac < 0.5
