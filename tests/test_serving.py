"""The concurrent serving runtime (`repro.serving`).

Component contracts — admission shedding, bulkhead limits, circuit-breaker
state machine, cancel-token deadlines, golden-checkable jobs — plus the
runtime-level behaviours the PR 4 acceptance criteria pin: typed errors
everywhere, cancellation that provably stops the engine early and frees
the fabric slot, hedging with seeded jitter, and retry routing around
flaky replicas.
"""

import pytest

from repro.dataflow import Engine
from repro.errors import (
    Cancelled,
    CircuitOpen,
    DeadlineExceeded,
    FaultError,
    Overloaded,
    ReproError,
    ServingError,
)
from repro.serving import (
    AdmissionController,
    Bulkhead,
    CLOSED,
    CancelToken,
    CircuitBreaker,
    HALF_OPEN,
    LoadTestConfig,
    OPEN,
    Outcome,
    Request,
    ServingPolicy,
    ServingRuntime,
    ServingWorkload,
    derive_seed,
    fault_injector_for,
)
from repro.serving.workload import _map_graph


@pytest.fixture(scope="module")
def workload():
    """One warmed catalog shared across the module (goldens are pure)."""
    w = ServingWorkload()
    w.warm(["sim_map", "sim_gather", "sim_chase"])
    return w


class TestErrorTaxonomy:
    def test_all_serving_errors_share_base(self):
        for exc in (Overloaded, DeadlineExceeded, CircuitOpen, Cancelled):
            assert issubclass(exc, ServingError)
        assert issubclass(ServingError, ReproError)

    def test_structured_fields(self):
        err = Overloaded("full", tenant="acme", query="q1", request_id=7,
                         depth=48, limit=48, evicted=True)
        assert (err.tenant, err.query, err.request_id) == ("acme", "q1", 7)
        assert (err.depth, err.limit, err.evicted) == (48, 48, True)
        err = DeadlineExceeded("late", deadline=100, cycle=104)
        assert (err.deadline, err.cycle) == (100, 104)
        err = CircuitOpen("open", replica="fab1", failures=3, retry_at=500)
        assert (err.replica, err.failures, err.retry_at) == ("fab1", 3, 500)

    def test_repr_is_stable_and_structured(self):
        a = CircuitOpen("open", tenant="t", query="q3", replica="fab0",
                        failures=4, retry_at=9)
        b = CircuitOpen("open", tenant="t", query="q3", replica="fab0",
                        failures=4, retry_at=9)
        assert repr(a) == repr(b)          # no object ids leak in
        assert "fab0" in repr(a) and "failures=4" in repr(a)
        # Empty fields are omitted, mirroring FaultError conventions.
        assert "request_id" not in repr(a)


class TestCancelToken:
    def test_deadline_raises_typed_at_budget(self):
        tok = CancelToken(10, query="sim_map", request_id=3)
        tok.check(9)                       # under budget: silent
        with pytest.raises(DeadlineExceeded) as ei:
            tok.check(10)
        assert ei.value.deadline == 10 and ei.value.cycle == 10
        assert ei.value.request_id == 3
        assert tok.fired_at == 10

    def test_cancel_beats_deadline(self):
        tok = CancelToken(1000)
        tok.cancel("shutdown")
        with pytest.raises(Cancelled) as ei:
            tok.check(5)
        assert ei.value.reason == "shutdown"

    def test_no_deadline_never_fires(self):
        tok = CancelToken(None)
        tok.check(10**9)


class TestEngineCancellation:
    """The tentpole's deadline-propagation contract, at the engine level."""

    @pytest.fixture()
    def full_cycles(self):
        g = _map_graph()
        return Engine(g).run().cycles

    @pytest.mark.parametrize("scheduler", ["event", "exhaustive"])
    def test_budget_stops_run_early(self, scheduler, full_cycles):
        budget = full_cycles // 2
        tok = CancelToken(budget)
        g = _map_graph()
        with pytest.raises(DeadlineExceeded) as ei:
            Engine(g, scheduler=scheduler, cancel=tok).run()
        # Provably early: the engine raised before ticking cycle `budget`.
        assert ei.value.cycle == budget < full_cycles
        # Streams are closed on the cancellation path (state released).
        assert all(s.closed for s in g.streams)

    def test_schedulers_cancel_at_identical_cycle(self, full_cycles):
        cycles = []
        for scheduler in ("event", "exhaustive"):
            tok = CancelToken(full_cycles // 3)
            with pytest.raises(DeadlineExceeded) as ei:
                Engine(_map_graph(), scheduler=scheduler, cancel=tok).run()
            cycles.append(ei.value.cycle)
        assert cycles[0] == cycles[1]

    @pytest.mark.parametrize("scheduler", ["event", "exhaustive"])
    def test_generous_budget_is_invisible(self, scheduler, full_cycles):
        tok = CancelToken(full_cycles + 1)
        stats = Engine(_map_graph(), scheduler=scheduler, cancel=tok).run()
        assert stats.cycles == full_cycles

    @pytest.mark.parametrize("scheduler", ["event", "exhaustive"])
    def test_external_cancel_stops_at_next_boundary(self, scheduler):
        tok = CancelToken(None)
        tok.cancel("test")
        with pytest.raises(Cancelled):
            Engine(_map_graph(), scheduler=scheduler, cancel=tok).run()


class TestAdmission:
    @staticmethod
    def _req(i, klass="interactive", deadline=None):
        return Request(id=i, tenant="t", query="sim_map", klass=klass,
                       arrival=0, deadline=deadline)

    def test_admits_under_capacity(self):
        adm = AdmissionController(capacity=2)
        assert adm.offer(self._req(0), now=0) == []
        assert adm.offer(self._req(1), now=0) == []
        assert adm.depth() == 2

    def test_full_queue_sheds_typed(self):
        adm = AdmissionController(capacity=1)
        adm.offer(self._req(0), now=0)
        shed = adm.offer(self._req(1), now=5)
        assert len(shed) == 1
        victim, err = shed[0]
        assert victim.id == 1
        assert isinstance(err, Overloaded)
        assert err.depth == 1 and err.limit == 1 and not err.evicted

    def test_interactive_displaces_newest_batch(self):
        adm = AdmissionController(capacity=2)
        adm.offer(self._req(0, "batch"), now=0)
        adm.offer(self._req(1, "batch"), now=0)
        shed = adm.offer(self._req(2, "interactive"), now=0)
        victim, err = shed[0]
        assert victim.id == 1              # newest batch request evicted
        assert err.evicted
        assert adm.take().id == 2          # interactive dispatches first
        assert adm.take().id == 0

    def test_batch_cannot_displace_interactive(self):
        adm = AdmissionController(capacity=1)
        adm.offer(self._req(0, "interactive"), now=0)
        shed = adm.offer(self._req(1, "batch"), now=0)
        assert shed[0][0].id == 1          # the batch arrival itself sheds

    def test_take_is_fifo_within_class(self):
        adm = AdmissionController(capacity=8)
        for i in range(3):
            adm.offer(self._req(i), now=0)
        assert [adm.take().id for __ in range(3)] == [0, 1, 2]

    def test_requeue_bypasses_capacity_and_goes_first(self):
        adm = AdmissionController(capacity=1)
        adm.offer(self._req(0), now=0)
        retry = self._req(9)
        adm.requeue(retry)
        assert adm.depth() == 2            # over nominal capacity, by design
        assert adm.take().id == 9

    def test_expire_sweeps_past_deadlines(self):
        adm = AdmissionController(capacity=4)
        adm.offer(self._req(0, deadline=10), now=0)
        adm.offer(self._req(1, deadline=100), now=0)
        expired = adm.expire(now=50)
        assert [r.id for r in expired] == [0]
        assert adm.depth() == 1


class TestBulkhead:
    @staticmethod
    def _req(i, tenant="t", klass="interactive"):
        return Request(id=i, tenant=tenant, query="q1", klass=klass)

    def test_per_tenant_limit(self):
        bh = Bulkhead(per_tenant=1)
        a, b = self._req(0, "acme"), self._req(1, "acme")
        assert bh.admits(a)
        bh.acquire(a)
        assert not bh.admits(b)            # acme at its limit
        assert bh.admits(self._req(2, "globex"))
        bh.release(a)
        assert bh.admits(b)

    def test_class_limit(self):
        bh = Bulkhead(class_limits={"batch": 1})
        a = self._req(0, klass="batch")
        bh.acquire(a)
        assert not bh.admits(self._req(1, klass="batch"))
        assert bh.admits(self._req(2, klass="interactive"))

    def test_admits_is_pure(self):
        # The dispatcher may re-scan a blocked request many times per
        # pass; the predicate itself must not inflate skip accounting.
        bh = Bulkhead(per_tenant=1)
        bh.acquire(self._req(0, "acme"))
        blocked = self._req(1, "acme")
        for __ in range(5):
            assert not bh.admits(blocked)
        assert bh.rejections == 0          # counted by the dispatcher


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        br = CircuitBreaker("b", threshold=3, cooldown=100)
        for t in (1, 2):
            br.record_failure(t)
            assert br.state == CLOSED
        br.record_failure(3)
        assert br.state == OPEN
        assert not br.allow(50)            # still cooling down
        assert br.retry_at() == 103

    def test_success_resets_consecutive_count(self):
        br = CircuitBreaker("b", threshold=2)
        br.record_failure(1)
        br.record_success(2)
        br.record_failure(3)
        assert br.state == CLOSED          # streak broken by the success

    def test_half_open_single_probe_then_close(self):
        br = CircuitBreaker("b", threshold=1, cooldown=10)
        br.record_failure(0)
        assert br.allow(10)                # cooldown elapsed: probe admitted
        assert br.state == HALF_OPEN
        assert not br.allow(11)            # one probe at a time
        br.record_success(12)
        assert br.state == CLOSED
        assert br.allow(13)

    def test_half_open_failure_reopens_with_fresh_cooldown(self):
        br = CircuitBreaker("b", threshold=1, cooldown=10)
        br.record_failure(0)
        assert br.allow(10)
        br.record_failure(15)
        assert br.state == OPEN
        assert br.retry_at() == 25         # cooldown restarts at reopen
        assert [s for __, s in br.transitions] == [OPEN, HALF_OPEN, OPEN]

    def test_abandoned_probe_frees_the_slot(self):
        # A probe whose attempt ends inconclusively (cancelled hedge leg,
        # request-deadline expiry) must hand the slot back — otherwise the
        # breaker refuses all traffic forever.
        br = CircuitBreaker("b", threshold=1, cooldown=10)
        br.record_failure(0)
        assert br.allow(10)                # probe admitted
        assert not br.allow(11)            # slot held
        br.probe_abandoned()
        assert br.state == HALF_OPEN       # inconclusive: no transition
        assert br.allow(12)                # a fresh probe is admitted
        br.record_success(20)
        assert br.state == CLOSED

    def test_typed_error_carries_breaker_state(self):
        br = CircuitBreaker("fab2", threshold=1, cooldown=10)
        br.record_failure(0)
        err = br.error(3, tenant="acme", query="q1", request_id=4)
        assert isinstance(err, CircuitOpen)
        assert err.replica == "fab2" and err.retry_at == 10


class TestWorkload:
    def test_goldens_are_deterministic_across_catalogs(self, workload):
        other = ServingWorkload()
        for name in ("sim_map", "sim_gather", "sim_chase"):
            assert workload.golden(name) == other.golden(name)

    def test_query_and_streaming_jobs_priced_in_cycles(self, workload):
        for name in ("q1", "stream_zone"):
            g = workload.golden(name)
            assert g.cycles > 1_000        # cost-model priced, not trivial
            assert g.digest

    def test_query_deadline_enforced_at_operator_boundary(self, workload):
        tok = CancelToken(10)              # far below any query's cost
        with pytest.raises(DeadlineExceeded):
            workload.job("q1").execute(token=tok)

    def test_sim_job_under_injector_raises_typed_or_matches_golden(
            self, workload):
        job = workload.job("sim_gather")
        golden = workload.golden("sim_gather")
        outcomes = {"typed": 0, "ok": 0}
        for seed in range(8):
            inj = fault_injector_for(job, seed=seed, horizon=golden.cycles)
            try:
                __, digest = job.execute(injector=inj)
            except ReproError:
                outcomes["typed"] += 1
            else:
                assert digest == golden.digest
                outcomes["ok"] += 1
        assert outcomes["typed"] > 0       # the schedule does land faults

    def test_derive_seed_is_stable_and_mixes(self):
        assert derive_seed(1, 2, 3) == derive_seed(1, 2, 3)
        assert derive_seed(1, 2, 3) != derive_seed(3, 2, 1)


class TestPlanCache:
    def _cache(self, capacity=32):
        from repro.observability.metrics import MetricsRegistry
        from repro.serving import PlanCache
        metrics = MetricsRegistry()
        return PlanCache(metrics=metrics, capacity=capacity), metrics

    def test_repeat_query_hits_and_matches_fresh_execution(self, workload):
        cache, metrics = self._cache()
        job = workload.job("q1")
        first = cache.execute(job)
        second = cache.execute(job)
        assert first == second == job.execute()
        assert metrics.counter("serving.plan_cache.misses").value == 1
        assert metrics.counter("serving.plan_cache.hits").value == 1

    def test_distinct_queries_and_datasets_miss_separately(self, workload):
        cache, metrics = self._cache()
        cache.execute(workload.job("q1"))
        cache.execute(workload.job("q2"))
        other = ServingWorkload(seed=7)    # same query, different dataset
        cache.execute(other.job("q1"))
        assert metrics.counter("serving.plan_cache.misses").value == 3
        assert metrics.counter("serving.plan_cache.hits").value == 0
        assert len(cache) == 3

    def test_hit_replays_deadline_verdict_bit_identically(self, workload):
        cache, metrics = self._cache()
        job = workload.job("q1")
        with pytest.raises(DeadlineExceeded) as fresh:
            cache.execute(job, token=CancelToken(10))
        # The deadline-exceeded miss still harvested the full plan: the
        # replay must raise the same verdict without re-executing.
        with pytest.raises(DeadlineExceeded) as replay:
            cache.execute(job, token=CancelToken(10))
        assert metrics.counter("serving.plan_cache.hits").value == 1
        assert replay.value.cycle == fresh.value.cycle
        assert replay.value.deadline == fresh.value.deadline
        assert str(replay.value) == str(fresh.value)
        # A generous deadline passes on the same cached plan.
        cycles, digest = cache.execute(job, token=CancelToken(1 << 30))
        assert (cycles, digest) == job.execute()

    def test_cache_keys_are_tenant_scoped(self, workload):
        # Regression: a tenant-blind key let one tenant's traffic warm
        # (and evict) another's plans, defeating quota isolation.
        cache, metrics = self._cache()
        job = workload.job("q1")
        first = cache.execute(job, token=CancelToken(1 << 30,
                                                     tenant="acme"))
        cross = cache.execute(job, token=CancelToken(1 << 30,
                                                     tenant="globex"))
        assert first == cross == job.execute()
        assert metrics.counter("serving.plan_cache.misses").value == 2
        assert metrics.counter("serving.plan_cache.hits").value == 0
        assert len(cache) == 2
        cache.execute(job, token=CancelToken(1 << 30, tenant="acme"))
        assert metrics.counter("serving.plan_cache.hits").value == 1

    def test_tenant_entries_occupy_distinct_slots_under_pressure(
            self, workload):
        # Tenant-scoped keys mean the same query cached for two tenants
        # fills two slots, and capacity eviction is honest about it.
        cache, metrics = self._cache(capacity=2)
        cache.execute(workload.job("q1"),
                      token=CancelToken(1 << 30, tenant="globex"))
        cache.execute(workload.job("q1"),
                      token=CancelToken(1 << 30, tenant="acme"))
        assert len(cache) == 2
        cache.execute(workload.job("q2"),
                      token=CancelToken(1 << 30, tenant="acme"))
        assert len(cache) == 2
        assert metrics.counter("serving.plan_cache.evictions").value == 1
        # globex's entry was the LRU and is gone; acme's q1 survives.
        cache.execute(workload.job("q1"),
                      token=CancelToken(1 << 30, tenant="acme"))
        assert metrics.counter("serving.plan_cache.hits").value == 1
        cache.execute(workload.job("q1"),
                      token=CancelToken(1 << 30, tenant="globex"))
        assert metrics.counter("serving.plan_cache.misses").value == 4

    def test_sim_jobs_and_injected_runs_bypass(self, workload):
        cache, metrics = self._cache()
        cache.execute(workload.job("sim_map"))
        cache.execute(workload.job("q1"), injector=object())
        assert metrics.counter("serving.plan_cache.bypass").value == 2
        assert len(cache) == 0

    def test_lru_eviction_is_bounded_and_counted(self, workload):
        cache, metrics = self._cache(capacity=2)
        for name in ("q1", "q2", "q3"):
            cache.execute(workload.job(name))
        assert len(cache) == 2
        assert metrics.counter("serving.plan_cache.evictions").value == 1
        # q1 was evicted; re-serving it is a miss, q3 is still a hit.
        cache.execute(workload.job("q3"))
        cache.execute(workload.job("q1"))
        assert metrics.counter("serving.plan_cache.hits").value == 1
        assert metrics.counter("serving.plan_cache.misses").value == 4

    def test_runtime_serves_repeat_queries_from_cache(self, workload):
        rt = _runtime(workload, n_replicas=1)
        for i in range(3):
            rt.submit(Request(id=i, tenant="t", query="q1",
                              arrival=i * 1_000_000))
        outcomes = rt.run()
        assert all(o.ok for o in outcomes)
        assert rt.check() == []
        assert rt.metrics.counter("serving.plan_cache.misses").value == 1
        assert rt.metrics.counter("serving.plan_cache.hits").value == 2


def _runtime(workload, *, n_replicas=2, flaky=(), policy=None, seed=0,
             fault_rate=1.0):
    return ServingRuntime(workload, n_replicas=n_replicas,
                          policy=policy or ServingPolicy(),
                          seed=seed, flaky_replicas=flaky,
                          fault_rate=fault_rate)


class TestRuntime:
    def test_light_load_all_ok(self, workload):
        rt = _runtime(workload)
        for i in range(4):
            rt.submit(Request(id=i, tenant="t", query="sim_map",
                              arrival=i * 1_000))
        outcomes = rt.run()
        assert all(o.ok for o in outcomes)
        assert rt.check() == []

    def test_queue_expiry_yields_typed_deadline_outcome(self, workload):
        golden = workload.golden("sim_chase")
        rt = _runtime(workload, n_replicas=1)
        rt.submit(Request(id=0, tenant="t", query="sim_chase", arrival=0))
        # Arrives while the only replica is busy, expires before it frees.
        rt.submit(Request(id=1, tenant="t", query="sim_map", arrival=1,
                          deadline=golden.cycles // 2))
        outcomes = {o.request.id: o for o in rt.run()}
        assert outcomes[0].ok
        assert outcomes[1].status == "deadline"
        assert isinstance(outcomes[1].error, DeadlineExceeded)
        assert outcomes[1].attempts == 0   # never dispatched

    def test_cancellation_frees_replica_at_deadline(self, workload):
        golden = workload.golden("sim_chase")
        budget = golden.cycles // 2
        rt = _runtime(workload, n_replicas=1)
        rt.submit(Request(id=0, tenant="t", query="sim_chase", arrival=0,
                          deadline=budget))
        outcomes = rt.run()
        assert outcomes[0].status == "deadline"
        # The slot frees at the cancellation cycle, not the natural end.
        assert outcomes[0].cycles <= budget < golden.cycles
        assert rt.replicas[0].busy_until <= budget

    def test_cancelled_slot_serves_the_next_request_sooner(self, workload):
        golden = workload.golden("sim_chase")
        budget = golden.cycles // 2

        def finish_of_second(deadline):
            rt = _runtime(workload, n_replicas=1)
            rt.submit(Request(id=0, tenant="t", query="sim_chase",
                              arrival=0, deadline=deadline))
            rt.submit(Request(id=1, tenant="t", query="sim_map", arrival=1))
            return {o.request.id: o for o in rt.run()}[1].finish

        assert finish_of_second(budget) < finish_of_second(None)

    def test_fault_retries_then_succeeds_elsewhere(self, workload):
        # Replica 0 always injects; replica 1 is healthy.  With one retry
        # the request must eventually land a correct result.
        rt = _runtime(workload, n_replicas=2, flaky=(0,),
                      policy=ServingPolicy(retries=2))
        rt.submit(Request(id=0, tenant="t", query="sim_gather", arrival=0))
        outcomes = rt.run()
        assert outcomes[0].ok or isinstance(outcomes[0].error, ReproError)
        assert rt.check() == []

    def test_breaker_opens_and_circuit_open_is_typed(self, workload):
        # Single all-flaky replica, no retries: consecutive faults open the
        # breaker, and once open a deadlined arrival fails fast with a
        # typed CircuitOpen rather than waiting out the cooldown.
        pol = ServingPolicy(retries=0, breaker_threshold=2,
                            breaker_cooldown=1_000_000)
        rt = _runtime(workload, n_replicas=1, flaky=(0,), policy=pol)
        golden = workload.golden("sim_gather")
        t = 0
        for i in range(6):
            rt.submit(Request(id=i, tenant="t", query="sim_gather",
                              arrival=t, deadline=t + 4 * golden.cycles))
            t += 2 * golden.cycles
        outcomes = rt.run()
        assert rt.replicas[0].breaker.state == OPEN
        circuit_rejected = [o for o in outcomes
                            if isinstance(o.error, CircuitOpen)]
        assert circuit_rejected, "no request saw the open breaker"
        assert all(o.status == "failed" for o in circuit_rejected)

    def test_hedge_launches_and_loser_is_cancelled(self, workload):
        golden = workload.golden("sim_chase")
        pol = ServingPolicy(hedge_after=golden.cycles // 4)
        rt = _runtime(workload, n_replicas=2, policy=pol)
        rt.submit(Request(id=0, tenant="t", query="sim_chase", arrival=0))
        outcomes = rt.run()
        assert outcomes[0].ok and outcomes[0].hedged
        m = rt.metrics.counters
        assert m["serving.hedges_launched"].value == 1
        assert m["serving.hedge_cancelled"].value == 1
        # Both replicas freed at the winner's finish.
        assert (rt.replicas[0].busy_until == rt.replicas[1].busy_until
                == outcomes[0].finish)

    def test_hedge_loser_through_half_open_breaker_recovers(self, workload):
        # Regression: a hedge leg admitted as a recovering replica's
        # half-open probe and then cancelled (the primary won) must hand
        # the probe slot back — the replica would otherwise refuse all
        # traffic for the rest of the run.
        golden = workload.golden("sim_chase")
        pol = ServingPolicy(hedge_after=golden.cycles // 4,
                            breaker_threshold=1, breaker_cooldown=0)
        rt = _runtime(workload, n_replicas=2, policy=pol)
        br = rt.replicas[1].breaker
        br.record_failure(0)               # fab1 opens; recovery due at 0
        rt.submit(Request(id=0, tenant="t", query="sim_chase", arrival=1))
        outcomes = rt.run()
        assert outcomes[0].ok and outcomes[0].hedged
        assert rt.metrics.counters["serving.hedge_cancelled"].value == 1
        assert br.state == HALF_OPEN      # inconclusive probe: no verdict
        assert br.allow(outcomes[0].finish + 1)   # not stuck refusing

    def test_requeue_with_past_availability_schedules_wakeup(self, workload):
        # Regression: when every free replica's breaker refuses and the
        # pool's earliest availability has already passed (a mid-recovery
        # replica whose busy_until elapsed), the requeued request still
        # needs a *future* event — otherwise it is stranded once the heap
        # drains, silently breaking one-outcome-per-request conservation.
        rt = _runtime(workload, n_replicas=1)
        br = rt.replicas[0].breaker
        for t in (0, 1, 2):
            br.record_failure(t)           # default threshold 3: OPEN
        assert br.allow(br.retry_at())     # half-open, probe slot held
        now = br.retry_at() + 5
        rt._no_replica(Request(id=0, tenant="t", query="sim_map"), now)
        assert rt.admission.depth() == 1   # requeued, not dropped
        assert rt._events and rt._events[0][0] > now

    def test_bulkhead_holds_tenant_to_its_limit(self, workload):
        pol = ServingPolicy(per_tenant=1)
        rt = _runtime(workload, n_replicas=2, policy=pol)
        for i in range(3):
            rt.submit(Request(id=i, tenant="acme", query="sim_chase",
                              arrival=0))
        outcomes = rt.run()
        assert all(o.ok for o in outcomes)
        # Serial execution: each request waited for the previous finish.
        finishes = sorted(o.finish for o in outcomes)
        assert finishes[1] >= finishes[0] * 2 - 1

    def test_shed_outcome_is_typed_overloaded(self, workload):
        pol = ServingPolicy(queue_depth=1)
        rt = _runtime(workload, n_replicas=1, policy=pol)
        for i in range(4):
            rt.submit(Request(id=i, tenant="t", query="sim_chase",
                              arrival=0, klass="batch"))
        outcomes = rt.run()
        shed = [o for o in outcomes if o.status == "shed"]
        assert shed and all(isinstance(o.error, Overloaded) for o in shed)
        assert len(outcomes) == 4          # conservation

    def test_report_shape(self, workload):
        rt = _runtime(workload)
        rt.submit(Request(id=0, tenant="t", query="sim_map", arrival=0))
        rt.run()
        rep = rt.report()
        assert rep["requests"] == 1
        assert rep["outcomes"]["ok"] == 1
        assert "p50" in rep["latency_cycles"]["interactive"]
        assert set(rep["breakers"]) == {"fab0", "fab1"}


class TestOutcomeSignature:
    def test_signature_reflects_disposition(self):
        req = Request(id=3, tenant="t", query="q1", arrival=10)
        a = Outcome(req, "ok", 50, replica="fab0", cycles=40, attempts=1)
        b = Outcome(req, "ok", 50, replica="fab0", cycles=40, attempts=1)
        assert a.signature() == b.signature()
        assert a.latency == 40
        c = Outcome(req, "ok", 51, replica="fab0", cycles=40, attempts=1)
        assert a.signature() != c.signature()


class TestLoadTestConfigDefaults:
    def test_generated_stream_is_deterministic(self):
        from repro.serving import generate_requests
        cfg = LoadTestConfig(requests=50, seed=3)
        one = generate_requests(cfg)
        two = generate_requests(cfg)
        assert [(r.id, r.query, r.arrival, r.deadline, r.klass,
                 r.tenant) for r in one] == \
               [(r.id, r.query, r.arrival, r.deadline, r.klass,
                 r.tenant) for r in two]
        assert any(r.klass == "batch" for r in one)
        assert any(r.deadline is None for r in one)
