"""The semantic partition cache (`repro.serving.partition_cache`).

Three layers of evidence that the cache can change latency but never an
answer:

* **property tests** (Hypothesis) over the predicate algebra itself —
  canonicalization is order-insensitive and idempotent, subsumption is
  reflexive/transitive and semantically sound, and every cache decision
  partitions the query's partition set exactly;
* **unit tests** of the fragment store — exact/derived hits, LRU-by-cost
  and per-tenant-quota eviction, version invalidation with bounded
  staleness consent, CRC corruption tripwires, late-insert races;
* a **differential fuzz suite** — 50 seeded random query streams (mixes
  of subsuming / overlapping / disjoint predicates with mid-stream
  invalidations) through the full cached serving runtime, on both the
  ``event`` and ``vector`` engine schedulers, asserting every cached
  serve's digest equals the cold uncached run bit-for-bit.
"""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.db.lowering import partition_set_of, radix_of
from repro.db.planner import Predicate
from repro.reliability.health import DegradePolicy
from repro.serving import (
    CachePolicy,
    PJOIN_NAMES,
    PartitionCache,
    Request,
    ServingPolicy,
    ServingRuntime,
    ServingWorkload,
    ShardPolicy,
)

# ---------------------------------------------------------------------------
# Hypothesis strategies over the predicate algebra
# ---------------------------------------------------------------------------

COLUMNS = ("a", "b", "c")
_columns = st.sampled_from(COLUMNS)
_values = st.integers(0, 12)

_atom = st.one_of(
    st.tuples(st.just("in"), _columns,
              st.lists(_values, max_size=4).map(tuple)),
    st.tuples(st.just("eq"), _columns, _values),
    st.tuples(st.just("ge"), _columns, _values),
    st.tuples(st.just("lt"), _columns, _values),
)
_atoms = st.lists(_atom, max_size=6)
_predicates = _atoms.map(lambda ats: Predicate.of(*ats))
#: Small row domain: every column combination the values can produce.
_rows = st.tuples(st.integers(-1, 13), st.integers(-1, 13),
                  st.integers(-1, 13))


def _matches(pred: Predicate, row) -> bool:
    return all(pred.matches(value, column)
               for column, value in zip(COLUMNS, row))


class TestPredicateProperties:
    @given(_atoms, st.randoms(use_true_random=False))
    def test_canonical_key_is_order_insensitive(self, atoms, rng):
        shuffled = list(atoms)
        rng.shuffle(shuffled)
        assert Predicate.of(*atoms).key() == Predicate.of(*shuffled).key()

    @given(_predicates, _predicates)
    def test_conjunction_commutes(self, p, q):
        assert (p & q).key() == (q & p).key()

    @given(_predicates)
    def test_canonicalization_is_idempotent(self, p):
        assert Predicate.of(*p.atoms()).key() == p.key()

    @given(_predicates, _rows)
    def test_atoms_round_trip_semantics(self, p, row):
        assert _matches(Predicate.of(*p.atoms()), row) == _matches(p, row)

    @given(_predicates)
    def test_subsumption_is_reflexive(self, p):
        assert p.subsumes(p)

    @given(_predicates, _predicates, _predicates)
    def test_subsumption_is_transitive(self, p, q, r):
        if p.subsumes(q) and q.subsumes(r):
            assert p.subsumes(r)

    @given(_predicates, _predicates, _rows)
    def test_subsumption_is_semantically_sound(self, p, q, row):
        # p ⊇ q means every row satisfying q satisfies p: a broader
        # cached class really contains the narrower query's rows.
        if p.subsumes(q) and _matches(q, row):
            assert _matches(p, row)

    @given(_predicates, _rows)
    def test_conjunction_is_intersection(self, p, row):
        q = Predicate.ge("a", 4)
        assert _matches(p & q, row) == (_matches(p, row)
                                        and _matches(q, row))

    @given(_predicates)
    def test_split_partitions_the_columns(self, p):
        on, rest = p.split("a")
        assert set(on.columns()) <= {"a"}
        assert "a" not in rest.columns()
        assert (on & rest).key() == p.key()


class TestPartitionSetOf:
    @given(st.lists(_values, min_size=1, max_size=8),
           st.sampled_from([2, 4, 8]))
    def test_in_sets_map_to_member_partitions(self, members, n):
        pred = Predicate.in_("k", members)
        parts = partition_set_of(pred, "k", n)
        assert set(parts) == {radix_of(v, n) for v in members}
        assert list(parts) == sorted(parts)

    @given(st.sampled_from([2, 4, 8]))
    def test_unconstrained_and_ranges_need_every_partition(self, n):
        assert partition_set_of(Predicate.true(), "k", n) == tuple(range(n))
        assert partition_set_of(Predicate.ge("k", 3), "k",
                                n) == tuple(range(n))

    def test_contradiction_is_empty(self):
        pred = Predicate.ge("k", 5) & Predicate.lt("k", 5)
        assert partition_set_of(pred, "k", 8) == ()


# ---------------------------------------------------------------------------
# Fragment-store unit tests (synthetic jobs, no fabric)
# ---------------------------------------------------------------------------

class _Schema:
    def __init__(self, *fields):
        self.fields = list(fields)

    def index(self, name):
        return self.fields.index(name)


_FAKE_SCHEMA = _Schema("k", "v")


class _FakeJob:
    """Just enough job surface for the cache: identity + class predicate."""

    def __init__(self, class_pred=None, dataset_key=("ds",), key="k"):
        self.class_pred = class_pred or Predicate.true()
        self.dataset_key = dataset_key
        self.key = key

    def joined_schema(self):
        return _FAKE_SCHEMA


def _rows_for(k, n=4):
    return tuple((k, 10 * k + i) for i in range(n))


def _cache(**policy_kwargs):
    cache = PartitionCache(CachePolicy(**policy_kwargs))
    return cache, cache.metrics


def _count(cache, name):
    return cache.metrics.counter(f"serving.partition_cache.{name}").value


class TestPartitionCacheStore:
    def test_exact_hit_round_trip(self):
        cache, __ = _cache()
        job = _FakeJob()
        version = cache.version_of(job.dataset_key)
        for k in (0, 1):
            cache.insert("t", job, 4, k, _rows_for(k), cost=100,
                         version=version)
        decision = cache.lookup("t", job, 4, (0, 1))
        assert decision.disposition == "hit"
        assert decision.residual == ()
        assert decision.fragments == {0: _rows_for(0), 1: _rows_for(1)}
        assert _count(cache, "hits") == 1

    def test_partial_and_miss_dispositions(self):
        cache, __ = _cache()
        job = _FakeJob()
        version = cache.version_of(job.dataset_key)
        cache.insert("t", job, 4, 0, _rows_for(0), 100, version)
        partial = cache.lookup("t", job, 4, (0, 1, 2))
        assert partial.disposition == "partial:1/3"
        assert partial.residual == (1, 2)
        assert abs(partial.residual_fraction - 2 / 3) < 1e-9
        miss = cache.lookup("t", job, 4, (3,))
        assert miss.disposition == "miss"
        assert _count(cache, "partial_hits") == 1
        assert _count(cache, "misses") == 1

    def test_decision_always_partitions_the_partition_set(self):
        # residual ∪ (exact ∪ derived ∪ stale) == parts, disjointly —
        # the coordinator relies on this to dispatch without holes.
        cache, __ = _cache()
        rng = random.Random(7)
        narrow = _FakeJob(Predicate.ge("v", 5))
        broad = _FakeJob()
        for trial in range(50):
            job = rng.choice((narrow, broad))
            version = cache.version_of(job.dataset_key)
            if rng.random() < 0.5:
                cache.insert("t", job, 8, rng.randrange(8),
                             _rows_for(trial), 10, version)
            if rng.random() < 0.2:
                cache.invalidate(job.dataset_key)
            parts = tuple(sorted(rng.sample(range(8),
                                            rng.randrange(1, 9))))
            d = cache.lookup("t", job, 8, parts)
            covered = d.exact + d.derived + d.stale
            assert tuple(sorted(covered + d.residual)) == parts
            assert set(d.fragments) == set(covered)

    def test_derived_hit_narrows_a_broader_class(self):
        cache, __ = _cache()
        broad = _FakeJob(Predicate.true())
        narrow = _FakeJob(Predicate.ge("v", 2))
        version = cache.version_of(broad.dataset_key)
        cache.insert("t", broad, 4, 0, _rows_for(0), 100, version)
        decision = cache.lookup("t", narrow, 4, (0,))
        assert decision.disposition == "hit"
        assert decision.derived == (0,)
        assert decision.fragments[0] == tuple(
            r for r in _rows_for(0) if r[1] >= 2)
        assert decision.lookup_cycles > 1      # the filter pass is priced
        assert _count(cache, "derived_hits") == 1
        # Re-cached under the narrow class: the next lookup is exact.
        again = cache.lookup("t", narrow, 4, (0,))
        assert again.exact == (0,)

    def test_derived_hit_never_widens(self):
        # A *narrower* cached class must not serve a broader query.
        cache, __ = _cache()
        narrow = _FakeJob(Predicate.ge("v", 2))
        broad = _FakeJob(Predicate.true())
        version = cache.version_of(narrow.dataset_key)
        cache.insert("t", narrow, 4, 0, _rows_for(0), 100, version)
        assert cache.lookup("t", broad, 4, (0,)).disposition == "miss"

    def test_tenants_are_isolated(self):
        cache, __ = _cache()
        job = _FakeJob()
        version = cache.version_of(job.dataset_key)
        cache.insert("acme", job, 4, 0, _rows_for(0), 100, version)
        assert cache.lookup("globex", job, 4, (0,)).disposition == "miss"
        assert cache.lookup("acme", job, 4, (0,)).disposition == "hit"

    def test_lru_eviction_bounded_by_total_cost(self):
        cache, __ = _cache(capacity_cost=250)
        job = _FakeJob()
        version = cache.version_of(job.dataset_key)
        for k in range(3):
            cache.insert("t", job, 4, k, _rows_for(k), 100, version)
        assert len(cache) == 2
        assert cache.total_cost <= 250
        assert _count(cache, "evictions") == 1
        # Partition 0 was the LRU victim; 1 and 2 still serve.
        assert cache.lookup("t", job, 4, (0,)).disposition == "miss"
        assert cache.lookup("t", job, 4, (1, 2)).disposition == "hit"

    def test_tenant_quota_evicts_within_the_tenant_only(self):
        cache, __ = _cache(tenant_quota=250)
        job = _FakeJob()
        version = cache.version_of(job.dataset_key)
        cache.insert("globex", job, 4, 3, _rows_for(3), 100, version)
        for k in range(3):
            cache.insert("acme", job, 4, k, _rows_for(k), 100, version)
        assert cache.tenant_cost["acme"] <= 250
        # globex's fragment survived acme blowing its own quota.
        assert cache.lookup("globex", job, 4, (3,)).disposition == "hit"
        assert cache.lookup("acme", job, 4, (0,)).disposition == "miss"

    def test_invalidation_stops_serving_and_drops_late_inserts(self):
        cache, __ = _cache()
        job = _FakeJob()
        version = cache.version_of(job.dataset_key)
        cache.insert("t", job, 4, 0, _rows_for(0), 100, version)
        cache.invalidate(job.dataset_key)
        # Default policy: no staleness consent — the fragment is dropped.
        assert cache.lookup("t", job, 4, (0,)).disposition == "miss"
        assert _count(cache, "stale_dropped") == 1
        # A residual run dispatched before the invalidation lands late.
        assert not cache.insert("t", job, 4, 1, _rows_for(1), 100, version)
        assert _count(cache, "late_inserts_dropped") == 1

    def test_bounded_staleness_serves_within_consent(self):
        cache, __ = _cache(degrade=DegradePolicy(serve_stale=True,
                                                 max_staleness=1))
        job = _FakeJob()
        version = cache.version_of(job.dataset_key)
        cache.insert("t", job, 4, 0, _rows_for(0), 100, version)
        cache.invalidate(job.dataset_key)
        decision = cache.lookup("t", job, 4, (0,))
        assert decision.disposition == "hit"
        assert decision.stale == (0,)
        assert _count(cache, "stale_served") == 1
        # One more version and the fragment exceeds consent.
        cache.invalidate(job.dataset_key)
        assert cache.lookup("t", job, 4, (0,)).disposition == "miss"
        assert _count(cache, "stale_dropped") == 1

    def test_global_epoch_invalidates_every_dataset(self):
        cache, __ = _cache()
        jobs = [_FakeJob(dataset_key=("ds", i)) for i in range(2)]
        for job in jobs:
            cache.insert("t", job, 4, 0, _rows_for(0), 100,
                         cache.version_of(job.dataset_key))
        cache.invalidate()                     # global epoch bump
        for job in jobs:
            assert cache.lookup("t", job, 4, (0,)).disposition == "miss"

    def test_corruption_is_detected_and_degrades_to_miss(self):
        cache, __ = _cache()
        job = _FakeJob()
        version = cache.version_of(job.dataset_key)
        cache.insert("t", job, 4, 0, _rows_for(0), 100, version)
        assert cache.corrupt(seed=9) is not None
        decision = cache.lookup("t", job, 4, (0,))
        assert decision.disposition == "miss"
        assert _count(cache, "corruption_dropped") == 1
        assert len(cache) == 0                 # the bad fragment is gone

    def test_corrupt_fragment_cannot_serve_via_derive(self):
        cache, __ = _cache()
        broad = _FakeJob(Predicate.true())
        narrow = _FakeJob(Predicate.ge("v", 2))
        version = cache.version_of(broad.dataset_key)
        cache.insert("t", broad, 4, 0, _rows_for(0), 100, version)
        cache.corrupt(seed=0)
        assert cache.lookup("t", narrow, 4, (0,)).disposition == "miss"


# ---------------------------------------------------------------------------
# Cached serving through the full runtime
# ---------------------------------------------------------------------------

#: Small enough for hundreds of cold runs, big enough that every radix
#: partition of every predicated join is non-trivial.
_TINY_CFG = dict(n_drivers=16, n_riders=24, n_locations=4, n_rides=120,
                 n_ride_reqs=48, n_driver_status=48)


@pytest.fixture(scope="module", params=["event", "vector"])
def fuzz_workload(request):
    workload = ServingWorkload(seed=5, rideshare_cfg=_TINY_CFG)
    for name in workload.names("sim"):
        workload.job(name).scheduler = request.param
    return workload


def _cached_policy(**cache_kwargs):
    return ServingPolicy(cache=CachePolicy(
        residual=ShardPolicy(n_shards=4), **cache_kwargs))


def _cold_digests():
    """The differential reference: every predicated query executed cold,
    whole and uncached, on an independently constructed workload (fresh
    dataset generation, fresh plans — only the seed is shared)."""
    cold = ServingWorkload(seed=5, rideshare_cfg=_TINY_CFG)
    return {name: cold.job(name).execute()[1] for name in PJOIN_NAMES}


class TestCachedServing:
    def test_repeat_query_hits_and_matches_golden(self, fuzz_workload):
        rt = ServingRuntime(fuzz_workload, n_replicas=2,
                            policy=_cached_policy(), seed=0)
        for i in range(3):
            rt.submit(Request(id=i, tenant="t", query="pj_rd_district",
                              arrival=i * 1_000_000))
        outcomes = rt.run()
        # The runtime verifies every serve (cached merges included)
        # against the golden digest: "ok" here means bit-identical.
        assert [o.status for o in outcomes] == ["ok"] * 3
        assert outcomes[0].cached == "miss"
        assert outcomes[1].cached == outcomes[2].cached == "hit"
        assert outcomes[1].cycles < outcomes[0].cycles
        assert rt.check() == []

    def test_drill_down_derives_from_broader_class(self, fuzz_workload):
        rt = ServingRuntime(fuzz_workload, n_replicas=2,
                            policy=_cached_policy(), seed=0)
        # Warm the rated region, then drill into the rated+roomy district:
        # same join, narrower key set AND narrower class.
        rt.submit(Request(id=0, tenant="t", query="pj_rd_rated",
                          arrival=0))
        rt.submit(Request(id=1, tenant="t", query="pj_rd_rated_roomy",
                          arrival=1_000_000))
        outcomes = rt.run()
        assert all(o.ok for o in outcomes)
        assert outcomes[1].cached == "hit"
        assert rt.metrics.counter(
            "serving.partition_cache.derived_hits").value > 0
        assert rt.check() == []

    def test_invalidation_event_forces_recompute(self, fuzz_workload):
        rt = ServingRuntime(fuzz_workload, n_replicas=2,
                            policy=_cached_policy(), seed=0,
                            invalidation_schedule=[1_500_000])
        for i in range(3):
            rt.submit(Request(id=i, tenant="t", query="pj_rr_district",
                              arrival=i * 1_000_000))
        outcomes = rt.run()
        assert [o.cached for o in outcomes] == ["miss", "hit", "miss"]
        assert all(o.ok for o in outcomes)
        assert rt.check() == []

    def test_corruption_event_degrades_not_corrupts(self, fuzz_workload):
        rt = ServingRuntime(fuzz_workload, n_replicas=2,
                            policy=_cached_policy(), seed=0,
                            corruption_schedule=[1_500_000])
        for i in range(3):
            rt.submit(Request(id=i, tenant="t", query="pj_rd_block",
                              arrival=i * 1_000_000))
        outcomes = rt.run()
        assert all(o.ok for o in outcomes)
        assert rt.metrics.counter(
            "serving.partition_cache.corruption_dropped").value > 0
        assert rt.check() == []


class TestDifferentialFuzz:
    """50 seeded random streams, each checked against cold uncached runs."""

    N_SEEDS = 25                      # × 2 scheduler params = 50 streams

    def _stream(self, seed):
        """A random mix of subsuming / overlapping / disjoint predicated
        queries (the catalog's drill-down hierarchy supplies all three
        relations) with seeded tenants and arrival jitter."""
        rng = random.Random(seed)
        requests = []
        t = 0
        for i in range(12):
            t += rng.randrange(1, 120_000)
            requests.append(Request(
                id=i, tenant=rng.choice(("acme", "globex")),
                query=rng.choice(PJOIN_NAMES), arrival=t))
        return requests

    @pytest.mark.parametrize("seed", range(N_SEEDS))
    def test_cached_serves_equal_cold_uncached_runs(self, fuzz_workload,
                                                    seed, cold_digests):
        rng = random.Random(seed * 9176 + 13)
        invalidations = sorted(rng.randrange(50_000, 900_000)
                               for __ in range(rng.randrange(0, 3)))
        rt = ServingRuntime(fuzz_workload, n_replicas=3,
                            policy=_cached_policy(), seed=seed,
                            invalidation_schedule=invalidations)
        requests = self._stream(seed)
        for request in requests:
            rt.submit(request)
        outcomes = rt.run()
        assert len(outcomes) == len(requests)          # conservation
        # The runtime compares every serve's digest (cached merges
        # included) against the workload golden and would have finalized
        # a mismatch as wrong_result; closing the differential loop, the
        # golden itself must equal the independent cold uncached run.
        assert rt.check() == []
        for outcome in outcomes:
            assert outcome.status != "wrong_result"
            if outcome.ok:
                golden = fuzz_workload.golden(outcome.request.query)
                assert golden.digest == cold_digests[outcome.request.query]


@pytest.fixture(scope="module")
def cold_digests():
    return _cold_digests()
