"""Continuous streaming analytics: ingest + index maintenance + standing
queries over sliding windows."""

import pytest

from repro.db import ExecutionContext, Table
from repro.db.operators import hash_group_by
from repro.workloads.streaming import StreamingAnalytics


def _stream(n=0):
    t = Table.from_columns("events",
                           time=list(range(n)),
                           zone=[i % 4 for i in range(n)],
                           value=[float(i) for i in range(n)])
    return StreamingAnalytics(t, "time", index_batch=64)


def _count_by_zone(window: Table, ctx: ExecutionContext) -> Table:
    return hash_group_by(window, ["zone"], {"n": ("count", None)}, ctx)


class TestIngest:
    def test_ingest_advances_now(self):
        s = _stream()
        s.ingest([(10, 0, 1.0), (20, 1, 2.0)])
        assert s.now == 20
        assert s.events_ingested == 2

    def test_out_of_order_rejected(self):
        s = _stream()
        s.ingest([(10, 0, 1.0)])
        with pytest.raises(ValueError):
            s.ingest([(5, 0, 1.0)])

    def test_index_sees_ingested_rows(self):
        s = _stream()
        s.ingest([(t, t % 4, 0.0) for t in range(100)])
        assert s.window_rows(9) == 10

    def test_index_tiers_grow_exponentially(self):
        s = _stream()
        s.ingest([(t, 0, 0.0) for t in range(1000)])
        s.index.lsm.flush()
        tiers = s.index_tiers()
        assert all(a < b for a, b in zip(tiers, tiers[1:]))


class TestStandingQueries:
    def test_evaluation_over_window(self):
        s = _stream()
        s.ingest([(t, t % 4, 0.0) for t in range(200)])
        s.register("demand", window=39, body=_count_by_zone)
        out = s.evaluate("demand")
        # Window [160, 199] = 40 rows, 10 per zone.
        assert sorted(out.rows) == [(z, 10) for z in range(4)]

    def test_result_tracks_new_events(self):
        s = _stream()
        s.ingest([(t, 0, 0.0) for t in range(50)])
        s.register("q", window=9, body=_count_by_zone)
        first = s.evaluate("q")
        s.ingest([(t, 1, 0.0) for t in range(50, 60)])
        second = s.evaluate("q")
        assert first.rows != second.rows
        assert dict(second.rows)[1] == 10

    def test_cost_tracks_window_not_table(self):
        s = _stream()
        s.ingest([(t, t % 4, 0.0) for t in range(5000)])
        s.register("narrow", window=10, body=_count_by_zone)
        s.register("wide", window=4000, body=_count_by_zone)
        narrow_ctx, wide_ctx = ExecutionContext(), ExecutionContext()
        s.evaluate("narrow", narrow_ctx)
        s.evaluate("wide", wide_ctx)
        assert (narrow_ctx.events.dram_read_bytes
                < wide_ctx.events.dram_read_bytes)

    def test_evaluate_all(self):
        s = _stream()
        s.ingest([(t, t % 4, 0.0) for t in range(100)])
        s.register("a", window=10, body=_count_by_zone)
        s.register("b", window=50, body=_count_by_zone)
        results = s.evaluate_all()
        assert set(results) == {"a", "b"}
        assert s.queries["a"].evaluations == 1

    def test_bootstrap_from_existing_table(self):
        s = _stream(n=100)
        assert s.now == 99
        s.register("q", window=19, body=_count_by_zone)
        out = s.evaluate("q")
        assert sum(n for __, n in out.rows) == 20
