"""Live ingestion: snapshot-consistent query flights under concurrent
writes, with compaction as admission-controlled background work.

Four layers of evidence:

* **snapshot pinning** — every taxi query executes against the version it
  admitted under, however many flushes/compactions land mid-flight, and
  its digest embeds that version;
* **maintenance semantics** — flushes and merges publish atomically in
  the completion handler; a lost leg is retried or abandoned whole (rows
  return to the memtable; a stale merge's CAS refuses), never torn;
* **starvation** — the compaction class is displaced under load but the
  memtable high-water mark stays within the documented bound thanks to
  deadline- and pressure-based escalation;
* a **differential fuzz suite** — 50 seeded interleavings of ingest /
  flush / compaction / query flights (25 seeds × the ``event`` and
  ``vector`` engine schedulers) whose per-version contents and per-query
  answers must equal an independent serial replay of the append log.
"""

import random

import pytest

from repro.db.planner import Predicate
from repro.serving import (
    CachePolicy,
    IngestPolicy,
    LoadTestConfig,
    PartitionCache,
    Request,
    ServingPolicy,
    ServingRuntime,
    ServingWorkload,
    TAXI_NAMES,
    check_invariants,
    run_loadtest,
    signature,
)
from repro.serving.admission import AdmissionController
from repro.serving.ingest import (
    MAINTENANCE_ID_BASE,
    SYSTEM_TENANT,
    CompactionJob,
    FlushJob,
)
from repro.serving.request import Outcome
from repro.serving.workload import TAXI_FLIGHT_SPECS


@pytest.fixture(scope="module")
def ingest_run():
    """One 200-request chaos run with live ingestion, faults, and seeded
    mid-run replica kills, shared by the assertions."""
    cfg = LoadTestConfig(requests=200, seed=0, faults=True, ingest=True,
                         kills=1, compaction_kills=1)
    return cfg, run_loadtest(cfg)


def _serial_flight(rows, name):
    """Brute-force replay of one flight over raw append-log rows — no
    LSM, no snapshots, no serving runtime; the differential oracle."""
    spec = dict(TAXI_FLIGHT_SPECS)[name]
    lo, hi = spec["zone_lo"], spec["zone_hi"]
    hour_lo, hour_hi = spec.get("hour_lo", 0), spec.get("hour_hi", 23)
    max_dist = spec.get("max_dist_dm")
    min_fare = spec.get("min_fare_cents")
    groups = {}
    for zone, (trip_id, hour, dist_dm, fare_cents) in rows:
        if not (lo <= zone <= hi and hour_lo <= hour <= hour_hi):
            continue
        if max_dist is not None and dist_dm > max_dist:
            continue
        if min_fare is not None and fare_cents < min_fare:
            continue
        acc = groups.setdefault(zone, [0, 0, 0])
        acc[0] += 1
        acc[1] += fare_cents
        acc[2] += dist_dm
    return tuple(sorted((z, n, fare, dist)
                        for z, (n, fare, dist) in groups.items()))


class TestSnapshotPinning:
    def test_no_invariant_violations(self, ingest_run):
        __, runtime = ingest_run
        assert check_invariants(runtime) == []

    def test_zero_wrong_results(self, ingest_run):
        __, runtime = ingest_run
        assert all(o.status != "wrong_result" for o in runtime.outcomes)

    def test_taxi_queries_pin_published_versions(self, ingest_run):
        __, runtime = ingest_run
        dataset = runtime.ingest.dataset
        taxi = [o for o in runtime.outcomes if o.request.query in TAXI_NAMES]
        assert taxi, "mix never offered a taxi flight"
        for o in taxi:
            assert o.request.snapshot is not None
            assert o.request.snapshot in dataset.snapshots
        others = [o for o in runtime.outcomes
                  if o.request.query not in TAXI_NAMES
                  and o.request.id < MAINTENANCE_ID_BASE]
        assert all(o.request.snapshot is None for o in others)

    def test_queries_span_multiple_versions(self, ingest_run):
        # The point of the exercise: flushes landed mid-run, so flights
        # pinned (and answered against) more than one version.
        __, runtime = ingest_run
        versions = {o.request.snapshot for o in runtime.outcomes
                    if o.request.snapshot is not None}
        assert len(versions) >= 2

    def test_ok_digests_embed_the_pinned_version(self, ingest_run):
        __, runtime = ingest_run
        checked = 0
        for o in runtime.outcomes:
            if o.ok and o.request.query in TAXI_NAMES:
                golden = runtime.golden_of(o.request)
                assert golden.digest[1] == o.request.snapshot
                checked += 1
        assert checked > 0

    def test_pinned_answers_match_serial_replay(self, ingest_run):
        # A version's content is a pure function of the flushed row
        # prefix; replaying that prefix through a brute-force filter must
        # reproduce the golden the runtime verified each serve against.
        __, runtime = ingest_run
        dataset = runtime.ingest.dataset
        flushed_at = {v: n for v, __k, n in dataset.version_log}
        for o in runtime.outcomes:
            if o.ok and o.request.query in TAXI_NAMES:
                golden = runtime.golden_of(o.request)
                prefix = dataset.row_log[:flushed_at[o.request.snapshot]]
                assert golden.digest[2] == _serial_flight(
                    prefix, o.request.query)

    def test_bit_for_bit_reproducible(self, ingest_run):
        cfg, runtime = ingest_run
        rerun = run_loadtest(cfg)
        assert signature(runtime) == signature(rerun)


class TestMaintenance:
    def test_flushes_and_compactions_published(self, ingest_run):
        __, runtime = ingest_run
        report = runtime.report()["ingest"]
        assert report["maintenance"]["flushes"] >= 1
        assert report["maintenance"]["compactions"] >= 1
        dataset = runtime.ingest.dataset
        assert dataset.rows_flushed > runtime.ingest.policy.initial_rows

    def test_no_version_is_ever_torn(self, ingest_run):
        # Every published version — including any that landed around the
        # seeded kills — must equal the serial replay of its row prefix.
        __, runtime = ingest_run
        dataset = runtime.ingest.dataset
        for version, __kind, n_rows in dataset.version_log:
            assert dataset.content_digest(version) == \
                dataset.prefix_digest(n_rows)
        assert runtime.ingest.counts["torn_avoided"] == 0

    def test_maintenance_runs_as_system_compaction_class(self, ingest_run):
        __, runtime = ingest_run
        maintenance = [o for o in runtime.outcomes
                       if o.request.id >= MAINTENANCE_ID_BASE]
        assert maintenance
        for o in maintenance:
            assert o.request.tenant == SYSTEM_TENANT
            assert o.request.query.startswith(("flush:", "compact:"))
            assert o.request.deadline is None

    def test_memtable_within_documented_bound(self, ingest_run):
        __, runtime = ingest_run
        sv = runtime.report()["ingest"]["starvation"]
        assert sv["within_bound"]
        assert sv["max_memtable"] <= sv["memtable_bound"]

    def test_merge_log_attributes_each_level(self, ingest_run):
        __, runtime = ingest_run
        lsm = runtime.ingest.dataset.lsm
        assert len(lsm.merge_log) >= \
            runtime.ingest.counts["compactions"] >= 1
        assert all(r.events.dram_write_bytes > 0 for r in lsm.merge_log)

    def test_report_attributes_the_write_path(self, ingest_run):
        __, runtime = ingest_run
        report = runtime.report()["ingest"]
        assert report["dataset"]["rows_ingested"] == \
            len(runtime.ingest.dataset.row_log)
        assert report["dataset"]["versions_published"] == \
            len(runtime.ingest.dataset.version_log)
        assert set(report["escalations"]) == {"batch", "interactive"}


class TestEscalation:
    def test_promote_moves_to_head_of_target_class(self):
        adm = AdmissionController(capacity=8)
        maint = Request(id=1, tenant=SYSTEM_TENANT, query="flush:d:1",
                        arrival=0, klass="compaction")
        older = Request(id=2, tenant="acme", query="q", arrival=0,
                        klass="batch")
        assert adm.offer(maint, 0) == []
        assert adm.offer(older, 0) == []
        assert adm.promote(maint, "batch")
        assert maint.klass == "batch"
        assert adm.take() is maint          # head of its new class
        assert adm.take() is older

    def test_promote_refuses_dispatched_requests(self):
        adm = AdmissionController(capacity=8)
        maint = Request(id=1, tenant=SYSTEM_TENANT, query="flush:d:1",
                        arrival=0, klass="compaction")
        adm.offer(maint, 0)
        assert adm.take() is maint
        assert not adm.promote(maint, "batch")
        assert maint.klass == "compaction"

    def test_starved_maintenance_escalates_under_load(self, ingest_run):
        __, runtime = ingest_run
        esc = runtime.report()["ingest"]["escalations"]
        assert sum(esc.values()) > 0


class TestLostLegs:
    """Retry-or-abandon semantics driven directly through the controller."""

    def _controller(self):
        policy = ServingPolicy(ingest=IngestPolicy(
            batch_size=32, initial_rows=64, max_resubmits=2))
        rt = ServingRuntime(ServingWorkload(), n_replicas=2, policy=policy,
                            seed=7)
        return rt.ingest

    def _fail(self, ctrl, kind="flush", status="failed"):
        rid = ctrl._outstanding[kind]
        request, __ = ctrl._live[rid]
        ctrl.on_outcome(Outcome(request=request, status=status, finish=100))
        return rid

    def test_lost_flush_is_retried_then_requeued(self):
        ctrl = self._controller()
        ctrl.dataset.append_batch(32, batch_seed=1)
        ctrl.pump(now=0)
        rid = ctrl._outstanding["flush"]
        assert rid is not None and isinstance(ctrl._live[rid][1], FlushJob)
        v_before = ctrl.dataset.lsm.version
        for __ in range(ctrl.policy.max_resubmits):
            failed = self._fail(ctrl)
            assert ctrl._outstanding["flush"] is not None   # resubmitted
            assert ctrl._outstanding["flush"] != failed     # fresh id
        self._fail(ctrl)                                    # budget exhausted
        assert ctrl._outstanding["flush"] is None
        assert ctrl.counts["resubmits"] == ctrl.policy.max_resubmits
        assert ctrl.counts["flushes_requeued"] == 1
        # Nothing published, nothing lost: the rows are back in the
        # memtable in append order, ready for the next flush attempt.
        assert ctrl.dataset.lsm.version == v_before
        assert ctrl.dataset.lsm.buffered() == 32
        assert ctrl.dataset.memtable_rows() == 32
        assert ctrl.dataset.lsm._buffer == ctrl.dataset.row_log[64:]

    def test_lost_compaction_is_abandoned_never_torn(self):
        ctrl = self._controller()
        lsm = ctrl.dataset.lsm
        # Two equal-size trees violate the ladder -> a pending merge.
        for __ in range(2):
            ctrl.dataset.append_batch(32, batch_seed=2)
            batch = lsm.claim_buffer()
            ctrl.dataset.rows_claimed += len(batch)
            tree, delta = lsm.build_batch_tree(batch)
            lsm.publish_tree(tree, delta)
            ctrl.dataset.rows_flushed += len(batch)
            ctrl.dataset._record("flush")
        assert lsm.pending_merge() is not None
        ctrl.pump(now=0)
        job = ctrl._live[ctrl._outstanding["compaction"]][1]
        assert isinstance(job, CompactionJob)
        sizes_before = lsm.tree_sizes()
        v_before = lsm.version
        for __ in range(ctrl.policy.max_resubmits + 1):
            self._fail(ctrl, kind="compaction")
        assert ctrl._outstanding["compaction"] is None
        assert ctrl.counts["compactions_abandoned"] == 1
        # Abandoned whole: the tree list is exactly as published before.
        assert lsm.version == v_before
        assert lsm.tree_sizes() == sizes_before
        # The abandoned pair is never re-enqueued (no retry livelock)...
        ctrl.pump(now=1000)
        assert ctrl._outstanding["compaction"] is None
        # ...and a late publication of the dead merge's output would be
        # refused by the CAS if the list had moved on meanwhile.
        for version, __k, n_rows in ctrl.dataset.version_log:
            assert ctrl.dataset.content_digest(version) == \
                ctrl.dataset.prefix_digest(n_rows)

    def test_shed_maintenance_resubmits_with_delay(self):
        ctrl = self._controller()
        ctrl.dataset.append_batch(32, batch_seed=3)
        ctrl.pump(now=0)
        self._fail(ctrl, status="shed")
        assert ctrl.counts["shed"] == 1
        rid = ctrl._outstanding["flush"]
        assert rid is not None
        request, job = ctrl._live[rid]
        assert request.arrival == 100 + ctrl.policy.resubmit_delay
        assert job.resubmits == 1

    def test_dead_fleet_strands_instead_of_spinning(self):
        ctrl = self._controller()
        for replica in ctrl.runtime.replicas:
            replica.killed_at = 0          # whole fleet gone
        ctrl.dataset.append_batch(32, batch_seed=4)
        ctrl.pump(now=0)
        self._fail(ctrl)
        assert ctrl._outstanding["flush"] is None   # no blind resubmission
        assert ctrl.counts["stranded_fleet_lost"] == 1
        assert ctrl.counts["flushes_requeued"] == 1
        assert ctrl.dataset.lsm.buffered() == 32


class _HierarchyJob:
    """Just enough job surface for the cache: identity + class predicate."""

    def __init__(self, dataset_key=("taxi", "nyc")):
        self.class_pred = Predicate.true()
        self.dataset_key = dataset_key
        self.key = "drill"

    def joined_schema(self):
        class _S:
            fields = ("k", "v")

            def index_of(self, name):
                return self.fields.index(name)
        return _S()


class TestPartitionScopedInvalidation:
    def _warmed(self, n_parts=8):
        cache = PartitionCache(CachePolicy())
        job = _HierarchyJob()
        for k in range(n_parts):
            rows = tuple((k, 10 * k + i) for i in range(3))
            assert cache.insert("t", job, n_parts, k, rows, cost=50,
                                version=cache.version_of(job.dataset_key))
        return cache, job

    def test_untouched_partitions_keep_serving(self):
        # Satellite pin: an ingest batch touching only bucket 2 ages only
        # partition-2 fragments — the warmed drill-down hierarchy keeps
        # its hit rate everywhere else.
        cache, job = self._warmed()
        cache.invalidate(job.dataset_key, parts=(2,))
        decision = cache.lookup("t", job, 8, tuple(range(8)))
        assert set(decision.residual) == {2}
        assert set(decision.exact) == set(range(8)) - {2}
        assert decision.version_at(2) == decision.version + 1
        assert decision.version_at(0) == decision.version

    def test_reinsert_at_partition_version_restores_hit(self):
        cache, job = self._warmed()
        cache.invalidate(job.dataset_key, parts=(2,))
        rows = ((2, 999),)
        # Inserting under the stale partition version is refused...
        stale = cache.version_of(job.dataset_key)
        assert not cache.insert("t", job, 8, 2, rows, 50, stale)
        # ...under the scoped version it lands and the hierarchy is whole.
        fresh = cache.version_of(job.dataset_key, 2)
        assert cache.insert("t", job, 8, 2, rows, 50, fresh)
        decision = cache.lookup("t", job, 8, tuple(range(8)))
        assert decision.disposition == "hit"

    def test_dataset_wide_invalidation_still_ages_everything(self):
        cache, job = self._warmed()
        cache.invalidate(job.dataset_key)
        decision = cache.lookup("t", job, 8, tuple(range(8)))
        assert decision.disposition == "miss"

    def test_ingest_invalidates_partitions_in_cached_chaos(self):
        cfg = LoadTestConfig(requests=150, seed=3, cache=True, zipf=1.1,
                             ingest=True)
        runtime = run_loadtest(cfg)
        assert check_invariants(runtime) == []
        report = runtime.report()
        pc = report["partition_cache"]
        assert pc["partition_invalidations"] > 0
        # Ingestion writes the taxi dataset only; the warmed predicated-
        # join hierarchy caches under other dataset keys and keeps its
        # hit rate through every ingest batch.
        assert pc["hits"] + pc["partial_hits"] > 0
        assert pc["stale_dropped"] == 0


class TestDifferentialFuzz:
    """50 randomized interleavings checked against serial replay."""

    N_SEEDS = 25                      # × 2 scheduler params = 50 runs

    def _run(self, seed, scheduler):
        rng = random.Random(seed * 7919 + 5)
        policy = ServingPolicy(
            scheduler=scheduler,
            ingest=IngestPolicy(batch_size=64, initial_rows=256,
                                escalate_after=3_000))
        schedule, t = [], 0
        for __ in range(rng.randrange(5, 12)):
            t += rng.randrange(200, 2_500)
            schedule.append((t, rng.randrange(16, 80)))
        rt = ServingRuntime(
            ServingWorkload(), n_replicas=3, policy=policy, seed=seed,
            flaky_replicas=(1,) if seed % 2 else (),
            ingest_schedule=schedule)
        t = 0
        for i in range(24):
            t += rng.randrange(100, 1_200)
            rt.submit(Request(id=i, tenant=rng.choice(("acme", "globex")),
                              query=rng.choice(TAXI_NAMES), arrival=t))
        rt.run()
        return rt

    @pytest.mark.parametrize("scheduler", ("event", "vector"))
    @pytest.mark.parametrize("seed", range(N_SEEDS))
    def test_interleavings_match_serial_replay(self, seed, scheduler):
        rt = self._run(seed, scheduler)
        dataset = rt.ingest.dataset
        assert all(o.status != "wrong_result" for o in rt.outcomes)
        # Per-version goldens: every published version's content equals
        # the serial replay of its append-log prefix, bit for bit.
        flushed_at = {}
        for version, __kind, n_rows in dataset.version_log:
            flushed_at[version] = n_rows
            assert dataset.content_digest(version) == \
                dataset.prefix_digest(n_rows)
        # And every served flight answer equals the brute-force replay
        # over that prefix — independent of LSM, snapshots, and caching.
        for o in rt.outcomes:
            if o.ok and o.request.query in TAXI_NAMES:
                golden = rt.golden_of(o.request)
                prefix = dataset.row_log[:flushed_at[o.request.snapshot]]
                assert golden.digest[2] == _serial_flight(
                    prefix, o.request.query)

    def test_schedulers_agree_bit_for_bit(self):
        # The engine-scheduler substitution is transparent to serving:
        # same seed, same interleaving, same signatures on both.
        for seed in (0, 1, 2):
            event = self._run(seed, "event")
            vector = self._run(seed, "vector")
            assert [o.signature() for o in event.outcomes] == \
                [o.signature() for o in vector.outcomes]
