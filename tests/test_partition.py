"""Radix partitioner: load balance, block lists, and the FAA/allocation
dataflow pipeline of fig. 7b."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.dataflow import run_graph
from repro.structures import (
    PartitionerDataflow,
    RadixPartitioner,
    radix_of,
)


class TestFunctionalPartitioner:
    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            RadixPartitioner(12)

    def test_all_records_preserved(self):
        rp = RadixPartitioner(8)
        recs = [(k, (k, k)) for k in range(300)]
        rp.partition(recs)
        assert sum(rp.sizes()) == 300

    def test_records_in_correct_partition(self):
        rp = RadixPartitioner(16)
        rp.partition((k, k) for k in range(500))
        for p in range(16):
            for rec in rp.read_partition(p):
                assert radix_of(rec, 16) == p

    def test_read_partition_returns_insertion_order(self):
        rp = RadixPartitioner(1, block_size=4)
        rp.partition((0, i) for i in range(10))
        assert rp.read_partition(0) == list(range(10))

    def test_block_allocation_counted(self):
        rp = RadixPartitioner(1, block_size=4)
        rp.partition((0, i) for i in range(9))
        # 9 records at block size 4 -> 3 blocks -> 3 header writes.
        assert rp.events.spad_writes == 3

    def test_skew_neutralized_by_hashing(self):
        # Heavily skewed keys (all sequential) still balance (§IV-A).
        rp = RadixPartitioner(16)
        rp.partition((k, k) for k in range(16_000))
        assert rp.skew() < 1.15

    def test_empty_skew_is_one(self):
        assert RadixPartitioner(4).skew() == 1.0

    def test_faa_per_record(self):
        rp = RadixPartitioner(4)
        rp.partition((k, k) for k in range(50))
        assert rp.events.rmw_ops == 50

    def test_sparse_writes_charged(self):
        rp = RadixPartitioner(4)
        rp.partition((k, (k,)) for k in range(50))
        assert rp.events.dram_sparse_accesses == 50
        assert rp.events.dram_write_bytes > 0

    @given(st.lists(st.integers(0, 10_000), max_size=300))
    @settings(max_examples=20, deadline=None)
    def test_partition_read_back_is_a_permutation(self, keys):
        rp = RadixPartitioner(8)
        rp.partition((k, k) for k in keys)
        out = []
        for p in range(8):
            out.extend(rp.read_partition(p))
        assert sorted(out) == sorted(keys)


class TestDataflowPartitioner:
    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            PartitionerDataflow(3)

    def test_all_records_land_once(self):
        rng = random.Random(5)
        pd = PartitionerDataflow(4, block_size=8, max_blocks=128)
        recs = [(rng.randrange(500), i) for i in range(150)]
        run_graph(pd.build_graph(recs))
        assert sorted(pd.all_records()) == sorted(recs)

    def test_partition_membership(self):
        rng = random.Random(6)
        pd = PartitionerDataflow(8, block_size=4, max_blocks=256)
        recs = [(rng.randrange(1000), i) for i in range(120)]
        run_graph(pd.build_graph(recs))
        for p in range(8):
            for key, __ in pd.read_partition(p):
                assert radix_of(key, 8) == p

    def test_block_lists_chain_in_dram(self):
        # Force one partition to span multiple blocks.
        pd = PartitionerDataflow(1, block_size=4, max_blocks=32)
        recs = [(0, i) for i in range(19)]
        run_graph(pd.build_graph(recs))
        assert sorted(v for __, v in pd.read_partition(0)) == list(range(19))
        head, count = pd.meta[0]
        assert count == 19 % 4 or count == 4  # partial or full head block

    def test_stragglers_recirculate(self):
        # With a tiny block size, some threads must hit the count > B
        # retry path; the pipeline still lands every record exactly once.
        pd = PartitionerDataflow(2, block_size=2, max_blocks=256)
        recs = [(k % 7, k) for k in range(100)]
        g = pd.build_graph(recs)
        run_graph(g)
        assert sorted(v for __, v in pd.all_records()) == list(range(100))

    def test_multiple_runs_not_supported_without_reset(self):
        # Documented behaviour: a PartitionerDataflow instance owns its
        # block pool across graphs.
        pd = PartitionerDataflow(2, block_size=4, max_blocks=64)
        run_graph(pd.build_graph([(0, 1)]))
        run_graph(pd.build_graph([(1, 2)]))
        got = sorted(v for __, v in pd.all_records())
        assert got == [1, 2]


class TestPartitionsReadBack:
    """PR 6 satellite: scatter/gather reads the full partition set via
    ``partitions()`` — an empty radix bucket is a valid empty shard, not
    a hole in the scatter set."""

    def test_always_exactly_n_partitions(self):
        rp = RadixPartitioner(8)
        rp.partition((k, k) for k in range(3))   # far fewer keys than buckets
        parts = rp.partitions()
        assert len(parts) == 8
        assert sum(len(p) for p in parts) == 3

    def test_single_key_leaves_real_empty_lists(self):
        rp = RadixPartitioner(4)
        rp.partition((7, v) for v in range(10))  # one key -> one bucket
        parts = rp.partitions()
        assert len(parts) == 4
        assert sorted(len(p) for p in parts) == [0, 0, 0, 10]
        assert all(p == [] for p in parts if not p)

    def test_no_records_yields_all_empty_partitions(self):
        assert RadixPartitioner(4).partitions() == [[], [], [], []]

    def test_partitions_matches_read_partition(self):
        rp = RadixPartitioner(16)
        rp.partition((k, k) for k in range(100))
        assert rp.partitions() == [rp.read_partition(p) for p in range(16)]
