"""Fault injection, detection, and recovery (`repro.reliability`).

Covers the reliability layer's contract: every injected fault class is
either *recovered* (retry / degradation yields the fault-free result) or
*raised* as a typed :class:`FaultError`; the same seed reproduces the
identical fault schedule and outcome; and with the injector disabled the
engine's cycle counts are untouched.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dataflow import (
    Engine,
    Graph,
    MapTile,
    SinkTile,
    SourceTile,
)
from repro.db import ExecutionContext
from repro.errors import (
    BankFailureError,
    ChecksumError,
    FaultError,
    ReproError,
    StallError,
)
from repro.memory import DramMemory, ScratchpadMemory
from repro.memory.dram import DramTile
from repro.memory.spad_tile import PortConfig, ScratchpadTile
from repro.reliability import (
    DegradePolicy,
    FaultEvent,
    FaultInjector,
    FaultKind,
    RetryPolicy,
    checkpoint,
    random_schedule,
    run_with_recovery,
)

N_RECORDS = 256


def _map_graph():
    """src -> map(double) -> sink, with named streams 'a' and 'b'."""
    g = Graph("g")
    src = g.add(SourceTile("src", [(i,) for i in range(N_RECORDS)]))
    m = g.add(MapTile("m", lambda r: (r[0] * 2,)))
    sink = g.add(SinkTile("sink"))
    g.connect(src, m, name="a")
    g.connect(m, sink, name="b")
    return g, sink


EXPECTED = sorted((i * 2,) for i in range(N_RECORDS))

HIST_BUCKETS = 64


def _hist_graph():
    """Scratchpad RMW histogram: every bucket ends at 8."""
    g = Graph("hist")
    mem = ScratchpadMemory("mem")
    counts = mem.region("counts", HIST_BUCKETS, 1, fill=0)
    src = g.add(SourceTile("src", [(i % HIST_BUCKETS,)
                                   for i in range(8 * HIST_BUCKETS)]))
    spad = g.add(ScratchpadTile("spad", mem, [PortConfig(
        mode="rmw", region=counts, addr=lambda r: r[0],
        rmw=lambda old, r: (old + 1, old + 1),
        combine=lambda r, res: None)]))
    g.connect(src, spad, name="reqs")
    return g, counts


def _gather_graph():
    """DRAM gather: src indices -> DramTile read -> sink."""
    g = Graph("gather")
    mem = DramMemory("dram", capacity_words=4096)
    data = mem.region("data", 1024, 1, fill=0)
    for i in range(1024):
        data[i] = i * 3
    src = g.add(SourceTile("src", [(i,) for i in range(0, 1024, 2)]))
    dram = g.add(DramTile("dram_t", mem, [PortConfig(
        mode="read", region=data, addr=lambda r: r[0],
        combine=lambda r, v: (r[0], v))]))
    sink = g.add(SinkTile("sink"))
    g.connect(src, dram, name="reqs")
    g.connect(dram, sink, name="resps")
    return g, sink


class TestFaultErrors:
    def test_fault_errors_share_base(self):
        for exc in (ChecksumError, StallError, BankFailureError):
            assert issubclass(exc, FaultError)
        assert issubclass(FaultError, ReproError)

    def test_fault_error_fields(self):
        err = ChecksumError("boom", kind=FaultKind.DROP_VECTOR.value,
                            site="a", cycle=17, detail="d")
        assert (err.kind, err.site, err.cycle, err.detail) == (
            "drop_vector", "a", 17, "d")


class TestScheduleDeterminism:
    def test_same_seed_same_schedule(self):
        kwargs = dict(streams=["a", "b"], tiles=["m"], spads=["spad"],
                      drams=["dram_t"], n_faults=8)
        one = random_schedule(99, **kwargs)
        two = random_schedule(99, **kwargs)
        assert [e.key() for e in one] == [e.key() for e in two]

    def test_different_seed_different_schedule(self):
        kwargs = dict(streams=["a", "b"], tiles=["m"], n_faults=8)
        assert ([e.key() for e in random_schedule(1, **kwargs)]
                != [e.key() for e in random_schedule(2, **kwargs)])

    def test_empty_sites_rejected(self):
        with pytest.raises(ValueError):
            random_schedule(1)

    def test_same_seed_same_outcome_across_two_runs(self):
        def outcome():
            g, sink = _map_graph()
            inj = FaultInjector.random(
                7, streams=["a"], tiles=["m"], n_faults=3, horizon=20)
            try:
                run_with_recovery(g, injector=inj, deadlock_window=2_000)
                result = sorted(sink.records)
            except FaultError as err:
                result = (type(err).__name__, err.kind, err.site)
            return inj.describe(), list(inj.log), result

        assert outcome() == outcome()


class TestCorruptionDetection:
    def test_corruption_raises_checksum_error(self):
        g, __ = _map_graph()
        inj = FaultInjector([FaultEvent(FaultKind.CORRUPT_RECORD, "a",
                                        cycle=3)])
        with pytest.raises(ChecksumError) as ei:
            Engine(g, injector=inj).run()
        assert ei.value.site == "a"
        assert ei.value.kind == FaultKind.CORRUPT_RECORD.value

    def test_drop_vector_raises_checksum_error(self):
        g, __ = _map_graph()
        inj = FaultInjector([FaultEvent(FaultKind.DROP_VECTOR, "b",
                                        cycle=5)])
        with pytest.raises(ChecksumError) as ei:
            Engine(g, injector=inj).run()
        assert ei.value.site == "b"
        assert ei.value.kind == FaultKind.DROP_VECTOR.value

    def test_corruption_recovered_by_retry(self):
        g, sink = _map_graph()
        inj = FaultInjector([FaultEvent(FaultKind.CORRUPT_RECORD, "a",
                                        cycle=3)])
        res = run_with_recovery(g, injector=inj)
        assert res.recovered and res.attempts == 2
        assert res.failures[0].kind == FaultKind.CORRUPT_RECORD.value
        assert sorted(sink.records) == EXPECTED

    def test_drop_recovered_by_retry(self):
        g, sink = _map_graph()
        inj = FaultInjector([FaultEvent(FaultKind.DROP_VECTOR, "b",
                                        cycle=5)])
        res = run_with_recovery(g, injector=inj)
        assert res.recovered
        assert sorted(sink.records) == EXPECTED

    def test_permanent_corruption_exhausts_retries(self):
        g, __ = _map_graph()
        inj = FaultInjector([FaultEvent(FaultKind.CORRUPT_RECORD, "a",
                                        cycle=3, once=False)])
        with pytest.raises(ChecksumError):
            run_with_recovery(g, injector=inj, retries=2)
        assert inj.runs == 3           # initial run + 2 retries


class TestStalls:
    def test_transient_stall_absorbed(self):
        g, sink = _map_graph()
        clean = Engine(_map_graph()[0]).run()
        inj = FaultInjector([FaultEvent(FaultKind.TILE_STALL, "m",
                                        cycle=4, duration=40)])
        stats = Engine(g, injector=inj).run()
        assert sorted(sink.records) == EXPECTED
        assert stats.cycles > clean.cycles

    def test_permanent_stall_raises_typed_stall_error(self):
        g, __ = _map_graph()
        inj = FaultInjector([FaultEvent(FaultKind.TILE_STALL, "m",
                                        cycle=4, duration=None, once=False)])
        with pytest.raises(StallError) as ei:
            run_with_recovery(g, injector=inj, retries=1,
                              deadlock_window=500)
        assert ei.value.site == "m"
        assert ei.value.kind == "tile_stall"
        assert ei.value.cycle is not None


class TestBankFailure:
    def test_bank_failure_raises_typed_error(self):
        g, __ = _hist_graph()
        inj = FaultInjector([FaultEvent(FaultKind.BANK_FAIL, "spad",
                                        cycle=6, bank=3)])
        with pytest.raises(BankFailureError) as ei:
            Engine(g, injector=inj).run()
        assert ei.value.site == "spad"
        assert "bank=3" in ei.value.detail

    def test_bank_failure_recovery_rolls_back_partial_rmws(self):
        g, counts = _hist_graph()
        inj = FaultInjector([FaultEvent(FaultKind.BANK_FAIL, "spad",
                                        cycle=6, bank=3)])
        res = run_with_recovery(g, injector=inj)
        assert res.recovered
        # The failed attempt's partial increments must not leak through.
        assert counts.snapshot() == [8] * HIST_BUCKETS


class TestDramSpike:
    def test_spike_is_absorbed_not_raised(self):
        g, sink = _gather_graph()
        base = Engine(g).run()
        want = sorted(sink.records)
        g2, sink2 = _gather_graph()
        inj = FaultInjector([FaultEvent(FaultKind.DRAM_SPIKE, "dram_t",
                                        cycle=10, duration=60, penalty=300)])
        spiked = Engine(g2, injector=inj).run()
        assert sorted(sink2.records) == want
        assert spiked.cycles > base.cycles
        assert inj.log and inj.log[0][2] == FaultKind.DRAM_SPIKE.value


class TestCheckpoint:
    def test_roundtrip_restores_sources_sinks_and_memory(self):
        g, counts = _hist_graph()
        cp = checkpoint(g)
        Engine(g).run()
        assert counts.snapshot() == [8] * HIST_BUCKETS
        cp.restore()
        assert counts.snapshot() == [0] * HIST_BUCKETS
        assert not g.tile("src").done()
        # A checkpoint is reusable: re-run and restore again.
        Engine(g).run()
        assert counts.snapshot() == [8] * HIST_BUCKETS
        cp.restore()
        assert counts.snapshot() == [0] * HIST_BUCKETS

    def test_restore_preserves_object_identity(self):
        g, counts = _hist_graph()
        streams = list(g.streams)
        cp = checkpoint(g)
        Engine(g).run()
        cp.restore()
        assert g.streams == streams          # same Stream objects
        assert g.tile("spad").ports[0].config.region is counts

    def test_restored_graph_reruns_identically(self):
        g, sink = _map_graph()
        cp = checkpoint(g)
        first = Engine(g).run()
        records = sorted(sink.records)
        cp.restore()
        assert sink.records == []
        second = Engine(g).run()
        assert second.cycles == first.cycles
        assert sorted(sink.records) == records


class TestZeroCostWhenDisabled:
    def test_cycle_counts_identical_with_and_without_empty_injector(self):
        g1, __ = _map_graph()
        g2, __ = _map_graph()
        plain = Engine(g1).run()
        armed = Engine(g2, injector=FaultInjector([])).run()
        assert plain.cycles == armed.cycles

    def test_streams_unmonitored_by_default(self):
        g, __ = _map_graph()
        Engine(g).run()
        assert all(s.monitor is None for s in g.streams)
        assert all(s.sent_sum == 0 and s.recv_sum == 0 for s in g.streams)


class TestQueryRetry:
    def test_backoff_schedule_deterministic_and_bounded(self):
        policy = RetryPolicy(retries=5, base_delay=0.01, max_delay=0.2,
                             multiplier=2.0, jitter=0.5, seed=11)
        one, two = policy.delays(), policy.delays()
        assert one == two
        assert len(one) == 5
        assert all(0.0 <= d <= 0.2 for d in one)
        # Exponential envelope: each raw delay doubles until the cap.
        assert one[2] > one[0]

    def test_run_with_retry_recovers_and_logs(self):
        ctx = ExecutionContext()
        attempts = []

        def flaky(sub):
            attempts.append(1)
            if len(attempts) < 3:
                raise ChecksumError("transient", kind="corrupt_record",
                                    site="a", cycle=1)
            sub.trace("scan", 10, 10)
            return "ok"

        out = ctx.run_with_retry(flaky, policy=RetryPolicy(retries=3, seed=5))
        assert out == "ok"
        assert len(attempts) == 3
        assert len(ctx.retry_log) == 2
        assert ctx.retry_log[0].kind == "corrupt_record"
        assert ctx.retry_log[0].delay > 0.0
        # Only the winning attempt's traces are merged.
        assert [t.op for t in ctx.traces] == ["scan"]

    def test_run_with_retry_exhaustion_reraises_typed(self):
        ctx = ExecutionContext()

        def broken(sub):
            raise StallError("stuck", kind="tile_stall", site="m", cycle=9)

        with pytest.raises(StallError):
            ctx.run_with_retry(broken, policy=RetryPolicy(retries=2))
        assert len(ctx.retry_log) == 3

    def test_non_fault_errors_not_retried(self):
        ctx = ExecutionContext()
        calls = []

        def buggy(sub):
            calls.append(1)
            raise ZeroDivisionError

        with pytest.raises(ZeroDivisionError):
            ctx.run_with_retry(buggy)
        assert len(calls) == 1


class TestStreamingDegradation:
    @staticmethod
    def _stream(policy=None):
        from repro.db import Table
        from repro.workloads.streaming import StreamingAnalytics
        t = Table.from_columns("events", time=[], zone=[], value=[])
        return StreamingAnalytics(t, "time", index_batch=16, policy=policy)

    def test_no_policy_keeps_fail_stop_contract(self):
        s = self._stream()
        s.ingest([(10, 0, 1.0)])
        with pytest.raises(ValueError):
            s.ingest([(5, 0, 1.0)])

    def test_bad_rows_skipped_and_logged(self):
        s = self._stream(DegradePolicy())
        s.ingest([(1, 0, 1.0), ("bad",), (2, 1, 2.0), (None, 0, 0.0)])
        assert s.events_ingested == 2
        report = s.health_report()
        assert report["rows_bad"] == 2
        assert report["status"] == "degraded"

    def test_late_rows_requeued_within_staleness_bound(self):
        s = self._stream(DegradePolicy(max_staleness=5))
        s.ingest([(10, 0, 1.0), (7, 1, 2.0), (2, 2, 3.0)])
        # t=7 is 3 late -> re-stamped to 10; t=2 is 8 late -> dropped.
        assert s.events_ingested == 2
        report = s.health_report()
        assert report["rows_requeued"] == 1
        assert report["rows_dropped"] == 1
        assert s.window_rows(1) == 2       # both live rows sit at t=10

    def test_failing_query_serves_stale_result(self):
        from repro.db.operators import hash_group_by
        s = self._stream(DegradePolicy(max_consecutive_failures=3))
        s.ingest([(t, t % 2, float(t)) for t in range(20)])
        fail = {"on": False}

        def body(window, ctx):
            if fail["on"]:
                raise ChecksumError("poisoned window", kind="corrupt_record",
                                    site="events", cycle=0)
            return hash_group_by(window, ["zone"], {"n": ("count", None)}, ctx)

        s.register("by_zone", 10, body)
        good = s.evaluate("by_zone")
        fail["on"] = True
        stale = s.evaluate("by_zone")
        assert stale is good               # last good result served
        assert s.queries["by_zone"].stale
        q = s.health_report()["queries"]["by_zone"]
        assert q["failures"] == 1 and q["stale_served"] == 1
        fail["on"] = False
        fresh = s.evaluate("by_zone")
        assert not s.queries["by_zone"].stale
        assert len(fresh) == 2

    def test_persistent_query_failure_finally_surfaces(self):
        s = self._stream(DegradePolicy(max_consecutive_failures=2))
        s.ingest([(t, 0, 0.0) for t in range(5)])

        def body(window, ctx):
            raise RuntimeError("always broken")

        s.register("broken", 3, body)
        s.evaluate("broken")               # 1st failure: empty stale result
        s.evaluate("broken")               # 2nd failure: stale again
        with pytest.raises(RuntimeError):
            s.evaluate("broken")           # 3rd consecutive: surfaces
        assert s.health_report()["queries"]["broken"]["failures"] == 3

    def test_never_succeeded_query_serves_empty_window_shape(self):
        s = self._stream(DegradePolicy())
        s.ingest([(t, 0, 0.0) for t in range(5)])

        def body(window, ctx):
            raise RuntimeError("broken from birth")

        s.register("b", 3, body)
        out = s.evaluate("b")
        assert len(out) == 0


class TestRandomizedEndToEnd:
    @pytest.mark.parametrize("seed", [3, 17, 42])
    def test_every_fault_class_recovered_or_typed(self, seed):
        g, sink = _map_graph()
        inj = FaultInjector.random(seed, streams=["a", "b"], tiles=["m"],
                                   n_faults=4, horizon=30)
        try:
            res = run_with_recovery(g, injector=inj, retries=4,
                                    deadlock_window=2_000)
            assert sorted(sink.records) == EXPECTED
            assert res.attempts == len(res.failures) + 1
        except FaultError as err:
            assert err.kind and err.site   # typed, structured, acceptable


class TestRetryDeadline:
    """PR 4 satellite: a retry budget that respects the caller's deadline."""

    @staticmethod
    def _always_fail(sub):
        raise ChecksumError("persistent", kind="corrupt_record",
                            site="a", cycle=1)

    def test_zero_deadline_fails_after_first_attempt(self):
        ctx = ExecutionContext()
        with pytest.raises(ChecksumError):
            ctx.run_with_retry(self._always_fail,
                               policy=RetryPolicy(retries=5, seed=1),
                               deadline=0.0)
        # One attempt, no retries: the first backoff already blew 0s.
        assert len(ctx.retry_log) == 1

    def test_deadline_cuts_the_backoff_schedule_short(self):
        policy = RetryPolicy(retries=5, base_delay=0.01, max_delay=1.0,
                             multiplier=2.0, jitter=0.0, seed=1)
        delays = policy.delays()           # deterministic: [.01,.02,.04,...]
        budget = delays[0] + delays[1]     # exactly two retries' worth
        ctx = ExecutionContext()
        with pytest.raises(ChecksumError):
            ctx.run_with_retry(self._always_fail, policy=policy,
                               deadline=budget)
        assert len(ctx.retry_log) == 3     # first try + 2 budgeted retries

    def test_generous_deadline_changes_nothing(self):
        for deadline in (None, 1e9):
            ctx = ExecutionContext()
            with pytest.raises(ChecksumError):
                ctx.run_with_retry(self._always_fail,
                                   policy=RetryPolicy(retries=2, seed=3),
                                   deadline=deadline)
            assert len(ctx.retry_log) == 3

    def test_recovery_within_deadline_still_wins(self):
        ctx = ExecutionContext()
        attempts = []

        def flaky(sub):
            attempts.append(1)
            if len(attempts) < 2:
                raise ChecksumError("once", kind="corrupt_record",
                                    site="a", cycle=1)
            return "ok"

        out = ctx.run_with_retry(
            flaky, policy=RetryPolicy(retries=3, base_delay=0.01,
                                      jitter=0.0, seed=0),
            deadline=10.0)
        assert out == "ok" and len(attempts) == 2


class TestCheckpointUnderEventScheduler:
    """PR 4 satellite: restores and the event engine's re-armed hooks."""

    def test_runtime_hooks_excluded_from_snapshots(self):
        from repro.reliability.checkpoint import _EXCLUDED_ATTRS
        assert {"monitor", "fault_injector", "sched", "tracer"} \
            <= _EXCLUDED_ATTRS

    @pytest.mark.parametrize("scheduler", ["event", "exhaustive"])
    def test_restore_after_midrun_abort_reruns_identically(self, scheduler):
        """Abort mid-run (serving cancel token), restore, re-run clean."""
        from repro.errors import DeadlineExceeded
        from repro.serving import CancelToken

        g, sink = _map_graph()
        reference = Engine(_map_graph()[0], scheduler=scheduler).run()
        cp = checkpoint(g)
        tok = CancelToken(reference.cycles // 2)
        with pytest.raises(DeadlineExceeded):
            Engine(g, scheduler=scheduler, cancel=tok).run()
        cp.restore()
        stats = Engine(g, scheduler=scheduler).run()
        assert stats == reference          # bit-identical SimStats
        assert sorted(sink.records) == EXPECTED

    def test_event_run_then_restore_then_both_schedulers_agree(self):
        """A snapshot taken before an event-scheduler run must not smuggle
        its sched hooks into a later exhaustive run (and vice versa)."""
        g, sink = _map_graph()
        cp = checkpoint(g)
        ev = Engine(g, scheduler="event").run()
        cp.restore()
        # The snapshot must not have captured (or resurrected) hooks: the
        # event engine detached them at run end and restore leaves them be.
        assert all(s.sched is None for s in g.streams)
        ex = Engine(g, scheduler="exhaustive").run()
        assert ev == ex
        assert sorted(sink.records) == EXPECTED
        cp.restore()
        assert Engine(g, scheduler="event").run() == ev


class TestHealthMetricsWiring:
    """PR 4 satellite: degradation incidents land in a MetricsRegistry."""

    def test_record_incident_increments_typed_counter(self):
        from repro.observability.metrics import MetricsRegistry
        from repro.reliability.health import HealthMonitor

        reg = MetricsRegistry()
        mon = HealthMonitor(metrics=reg)
        mon.record_incident("bad_row", "events", 3)
        mon.record_incident("bad_row", "events", 4)
        mon.record_incident("late_dropped", "events", 5)
        assert reg.counters["health.bad_row"].value == 2
        assert reg.counters["health.late_dropped"].value == 1

    def test_unwired_monitor_stays_metric_free(self):
        from repro.reliability.health import HealthMonitor
        mon = HealthMonitor()
        mon.record_incident("bad_row", "events", 1)
        assert mon.metrics is None

    def test_streaming_pipeline_passthrough(self):
        from repro.db import Table
        from repro.observability.metrics import MetricsRegistry
        from repro.workloads.streaming import StreamingAnalytics

        reg = MetricsRegistry()
        t = Table.from_columns("events", time=[], zone=[], value=[])
        s = StreamingAnalytics(t, "time", index_batch=16,
                               policy=DegradePolicy(), metrics=reg)
        s.ingest([(1, 0, 1.0), ("bad",), (2, 1, 2.0)])
        assert reg.counters["health.bad_row"].value == 1


class TestBreakerProperties:
    """PR 4 satellite: seeded property tests of the breaker state machine."""

    @given(st.integers(1, 5), st.integers(1, 100),
           st.lists(st.booleans(), min_size=1, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_state_machine_invariants(self, threshold, cooldown, results):
        from repro.serving import CLOSED, HALF_OPEN, OPEN, CircuitBreaker

        br = CircuitBreaker("p", threshold=threshold, cooldown=cooldown)
        now = 0
        for ok in results:
            now += 1
            if not br.allow(now):
                # Refusals only while open and cooling down.
                assert br.state in (OPEN, HALF_OPEN)
                if br.state == OPEN:
                    assert now < br.retry_at()
                continue
            if ok:
                br.record_success(now)
                assert br.state == CLOSED
                assert br.consecutive_failures == 0
            else:
                br.record_failure(now)
            assert br.state in (CLOSED, OPEN, HALF_OPEN)
            if br.state == CLOSED:
                assert br.consecutive_failures < threshold
        # The transition log only ever records state *changes*.
        for (t1, s1), (t2, s2) in zip(br.transitions, br.transitions[1:]):
            assert t1 <= t2 and s1 != s2

    @given(st.integers(1, 4), st.integers(5, 50))
    @settings(max_examples=30, deadline=None)
    def test_open_breaker_recovers_through_half_open(self, threshold,
                                                     cooldown):
        from repro.serving import CLOSED, HALF_OPEN, OPEN, CircuitBreaker

        br = CircuitBreaker("p", threshold=threshold, cooldown=cooldown)
        for i in range(threshold):
            br.record_failure(i)
        assert br.state == OPEN
        assert not br.allow(br.retry_at() - 1)
        assert br.allow(br.retry_at())     # probe admitted at the boundary
        assert br.state == HALF_OPEN
        br.record_success(br.retry_at() + 1)
        assert br.state == CLOSED


class TestDegradationProperties:
    """PR 4 satellite: the stale-serve bound, as a property."""

    @given(st.integers(0, 12), st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_stale_serves_bounded_by_policy(self, n_failures, bound):
        from repro.db import Table
        from repro.workloads.streaming import StreamingAnalytics

        t = Table.from_columns("events", time=[], zone=[], value=[])
        s = StreamingAnalytics(
            t, "time", index_batch=16,
            policy=DegradePolicy(max_consecutive_failures=bound))
        s.ingest([(i, 0, float(i)) for i in range(5)])

        def body(window, ctx):
            raise ChecksumError("poisoned", kind="corrupt_record",
                                site="events", cycle=0)

        s.register("q", 3, body)
        served_stale = 0
        for __ in range(n_failures):
            try:
                s.evaluate("q")
                served_stale += 1
            except ChecksumError:
                pass
        # Degradation masks exactly the first `bound` consecutive
        # failures; everything after surfaces.
        assert served_stale == min(n_failures, bound)
        assert s.health_report()["queries"].get(
            "q", {"failures": 0})["failures"] == n_failures


class TestRetryDeadlineClamp:
    """PR 6 satellite: the final backoff is *clamped* to the remaining
    budget, never skipped and never overshooting the deadline."""

    @staticmethod
    def _always_fail():
        raise ChecksumError("persistent", kind="corrupt_record",
                            site="a", cycle=1)

    @staticmethod
    def _policy():
        return RetryPolicy(retries=5, base_delay=0.01, max_delay=1.0,
                           multiplier=2.0, jitter=0.0, seed=1)

    def test_partial_budget_grants_a_clamped_final_retry(self):
        from repro.reliability import retry_call
        policy = self._policy()
        delays = policy.delays()
        # Strictly between one and two full backoff steps: the second
        # retry must still happen, after a *shortened* sleep.
        budget = delays[0] + delays[1] / 2
        log = []
        with pytest.raises(ChecksumError):
            retry_call(self._always_fail, policy=policy, log=log,
                       deadline=budget)
        assert len(log) == 3               # first try + 2 budgeted retries
        assert log[0].delay == pytest.approx(delays[0])
        assert log[1].delay == pytest.approx(budget - delays[0])
        assert log[1].delay < delays[1]    # clamped, not the full step
        assert log[0].delay + log[1].delay == pytest.approx(budget)

    def test_exact_boundary_spends_the_budget_then_raises(self):
        from repro.reliability import retry_call
        policy = self._policy()
        delays = policy.delays()
        log = []
        with pytest.raises(ChecksumError):
            retry_call(self._always_fail, policy=policy, log=log,
                       deadline=delays[0])
        # The budget is spent to the cycle after one full backoff; the
        # next retry's clamp leaves 0.0 and the typed error re-raises.
        assert len(log) == 2
        assert log[0].delay == pytest.approx(delays[0])
        assert log[1].delay == 0.0

    def test_slept_time_never_overshoots_the_deadline(self):
        from repro.reliability import retry_call
        slept = []
        budget = 0.035
        with pytest.raises(ChecksumError):
            retry_call(self._always_fail, policy=self._policy(),
                       sleep=slept.append, deadline=budget)
        assert sum(slept) == pytest.approx(budget)
        assert all(s > 0.0 for s in slept)  # zero-length sleeps elided
