"""Edge cases across modules that the focused suites don't reach."""

import pytest

from repro.dataflow import (
    CopyTile,
    Graph,
    LANES,
    MergeTile,
    Schema,
    SinkTile,
    SourceTile,
    StampTile,
    Stream,
    run_graph,
)
from repro.dataflow.stats import ScratchpadStats, TileStats
from repro.db import Table
from repro.memory import DramMemory, DramTile, PortConfig, faa
from repro.structures.common import StructureEvents


class TestSchemaEdgeCases:
    def test_concat_without_prefix_uses_rhs_fallback(self):
        left = Schema(["k", "v"])
        right = Schema(["k", "w"])
        joined = left.concat(right)
        assert joined.fields == ("k", "v", "rhs_k", "w")

    def test_concat_disjoint_no_prefix_needed(self):
        joined = Schema(["a"]).concat(Schema(["b"]))
        assert joined.fields == ("a", "b")

    def test_empty_schema(self):
        s = Schema([])
        assert len(s) == 0
        assert s.make() == ()


class TestMergeFanIn:
    def test_three_way_merge(self):
        g = Graph("m3")
        sources = [g.add(SourceTile(f"s{i}", [(i, j) for j in range(20)]))
                   for i in range(3)]
        merge = g.add(MergeTile("merge"))
        sink = g.add(SinkTile("out"))
        for s in sources:
            g.connect(s, merge)
        g.connect(merge, sink)
        run_graph(g)
        assert len(sink.records) == 60

    def test_copy_tile_under_backpressure(self):
        # One side of the copy drains slower (tiny stream capacity):
        # the copy must not lose or duplicate records.
        g = Graph("cp")
        src = g.add(SourceTile("src", [(i,) for i in range(100)]))
        cp = g.add(CopyTile("cp"))
        a, b = g.add(SinkTile("a")), g.add(SinkTile("b"))
        g.connect(src, cp)
        g.connect(cp, a, producer_port=0, capacity=1)
        g.connect(cp, b, producer_port=1, capacity=4)
        run_graph(g)
        assert sorted(a.records) == sorted(b.records)
        assert len(a.records) == 100


class TestStampContinuity:
    def test_stamp_continues_across_graphs(self):
        # The same StampTile instance keeps its counter — how the hash
        # table's slot reservation persists across incremental builds.
        tile = StampTile("st")
        g = Graph("g1")
        src = g.add(SourceTile("src", [(0,), (1,)]))
        g.add(tile)
        sink = g.add(SinkTile("out"))
        g.connect(src, tile)
        g.connect(tile, sink)
        run_graph(g)
        assert tile.counter == 2


class TestDramRmw:
    def test_faa_over_dram(self):
        # DRAM tiles inherit the full RMW machinery (used by ablations).
        dram = DramMemory("d")
        counter = dram.region("c", 4, 1, fill=0)
        g = Graph("dram_rmw")
        src = g.add(SourceTile("src", [(i % 4,) for i in range(40)]))
        tile = g.add(DramTile("t", dram, [PortConfig(
            mode="rmw", region=counter, addr=lambda r: r[0],
            rmw=faa(), combine=lambda r, old: None)]))
        g.connect(src, tile)
        run_graph(g)
        assert [counter[i] for i in range(4)] == [10, 10, 10, 10]


class TestStatsObjects:
    def test_tile_stats_utilization_bounds(self):
        t = TileStats("x")
        t.busy_cycles, t.idle_cycles = 3, 7
        assert t.utilization == pytest.approx(0.3)

    def test_tile_stats_empty(self):
        t = TileStats("x")
        assert t.utilization == 0.0
        assert t.lane_occupancy == 0.0

    def test_spad_stats_rates_empty(self):
        s = ScratchpadStats()
        assert s.conflict_rate == 0.0
        assert s.bank_throughput == 0.0

    def test_structure_events_merge_and_dict(self):
        a = StructureEvents(spad_reads=2)
        b = StructureEvents(spad_reads=3, rmw_ops=1)
        a.merge(b)
        assert a.spad_reads == 5
        assert a.asdict()["rmw_ops"] == 1


class TestReprs:
    def test_stream_repr_states(self):
        s = Stream("x")
        assert "open" in repr(s)
        s.push([(1,)])
        s.close()
        assert "eos" in repr(s)
        s.pop()
        assert "closed" in repr(s)

    def test_table_repr(self):
        t = Table.from_columns("t", a=[1, 2])
        assert "2 rows" in repr(t)

    def test_tile_repr(self):
        assert "SinkTile" in repr(SinkTile("s"))


class TestVectorWidthInvariant:
    def test_no_vector_exceeds_lanes(self):
        # Instrument a stream to verify the engine never pushes a vector
        # wider than the hardware's lane count.
        g = Graph("w")
        src = g.add(SourceTile("src", [(i,) for i in range(200)]))
        cp = g.add(CopyTile("cp"))
        a, b = g.add(SinkTile("a")), g.add(SinkTile("b"))
        streams = [g.connect(src, cp),
                   g.connect(cp, a, producer_port=0),
                   g.connect(cp, b, producer_port=1)]
        run_graph(g)
        for s in streams:
            assert s.pushed_vectors > 0
            # Mean width can never exceed the lane count, and with 200
            # records the streams must carry full vectors mostly.
            assert s.pushed_records <= s.pushed_vectors * LANES
