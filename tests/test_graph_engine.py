"""Graph construction and cycle-engine semantics: validation, cyclic
pipelines, deadlock detection, quiescence, statistics."""

import pytest

from repro.dataflow import (
    Engine,
    FilterTile,
    Graph,
    MapTile,
    MergeTile,
    SinkTile,
    SourceTile,
    run_graph,
)
from repro.errors import GraphError, SimulationError


def _countdown_graph(items):
    """The canonical while-loop dataflow of fig. 5a: decrement until 0."""
    g = Graph("loop")
    src = g.add(SourceTile("src", items))
    merge = g.add(MergeTile("merge"))
    cond = g.add(FilterTile("cond", lambda r: r[1] <= 0))
    dec = g.add(MapTile("dec", lambda r: (r[0], r[1] - 1)))
    sink = g.add(SinkTile("sink"))
    g.connect(src, merge)
    g.connect(merge, cond)
    g.connect(cond, sink, producer_port=0)
    g.connect(cond, dec, producer_port=1)
    g.connect(dec, merge, priority=True)
    return g, sink


class TestGraphConstruction:
    def test_duplicate_tile_name_rejected(self):
        g = Graph("g")
        g.add(SinkTile("x"))
        with pytest.raises(GraphError):
            g.add(SinkTile("x"))

    def test_tile_lookup_by_name(self):
        g = Graph("g")
        t = g.add(SinkTile("x"))
        assert g.tile("x") is t

    def test_tile_lookup_missing_raises(self):
        with pytest.raises(GraphError):
            Graph("g").tile("nope")

    def test_connect_requires_registered_tiles(self):
        g = Graph("g")
        a = SourceTile("a", [])
        b = SinkTile("b")
        with pytest.raises(GraphError):
            g.connect(a, b)

    def test_validate_flags_missing_inputs(self):
        g = Graph("g")
        g.add(MapTile("m", lambda r: r))
        with pytest.raises(GraphError):
            g.validate()

    def test_tile_counts(self):
        g, __ = _countdown_graph([(0, 1)])
        counts = g.tile_counts()
        assert counts["MergeTile"] == 1
        assert counts["FilterTile"] == 1

    def test_sources_and_sinks_discovery(self):
        g, sink = _countdown_graph([(0, 1)])
        assert len(g.sources()) == 1
        assert g.sinks() == [sink]


class TestCyclicExecution:
    def test_all_threads_eventually_exit(self):
        items = [(i, i % 9) for i in range(200)]
        g, sink = _countdown_graph(items)
        run_graph(g)
        assert len(sink.records) == 200

    def test_zero_iteration_threads_pass_through(self):
        g, sink = _countdown_graph([(i, 0) for i in range(50)])
        run_graph(g)
        assert len(sink.records) == 50

    def test_single_thread_loop(self):
        g, sink = _countdown_graph([(0, 100)])
        stats = run_graph(g)
        assert len(sink.records) == 1
        # One thread must recirculate ~100 times: cycles scale with depth.
        assert stats.cycles > 100

    def test_latency_tolerance_with_many_threads(self):
        # With enough threads in flight, loop throughput approaches line
        # rate despite the loop-carried dependence (§III-A).
        few_g, __ = _countdown_graph([(i, 8) for i in range(8)])
        many_g, __ = _countdown_graph([(i, 8) for i in range(512)])
        few = Engine(few_g).run()
        many = Engine(many_g).run()
        # 64x the threads must take far less than 64x the cycles.
        assert many.cycles < few.cycles * 16

    def test_empty_source_quiesces(self):
        g, sink = _countdown_graph([])
        stats = run_graph(g)
        assert sink.records == []
        assert stats.cycles < 50


class TestEngineGuards:
    def test_deadlock_detected(self):
        # A merge whose only producer never produces: filter drops all,
        # loop holds one record forever is NOT constructible here; instead
        # block a sink behind a stream that no one consumes.
        g = Graph("dead")
        src = g.add(SourceTile("src", [(1,)]))
        m = g.add(MapTile("m", lambda r: r))
        g.connect(src, m)
        # m's output packer has no stream and is not marked dropped:
        # simulate a stuck consumer with a full, never-popped stream.
        sink = g.add(SinkTile("sink"))
        stream = g.connect(m, sink)
        sink.tick = lambda cycle: False  # consumer wedged
        sink.idle = lambda: False
        with pytest.raises(SimulationError):
            Engine(g, deadlock_window=200).run()

    def test_max_cycles_enforced(self):
        g, __ = _countdown_graph([(0, 10_000)])
        with pytest.raises(SimulationError):
            Engine(g, max_cycles=100).run()

    def test_stuck_report_names_culprits(self):
        g = Graph("dead")
        src = g.add(SourceTile("src", [(1,)]))
        sink = g.add(SinkTile("sink"))
        g.connect(src, sink)
        sink.tick = lambda cycle: False
        sink.idle = lambda: False
        with pytest.raises(SimulationError) as err:
            Engine(g, deadlock_window=100).run()
        assert "src->sink" in str(err.value)


class TestStatistics:
    def test_cycle_count_positive(self):
        g, __ = _countdown_graph([(i, 3) for i in range(64)])
        stats = run_graph(g)
        assert stats.cycles > 0

    def test_all_tiles_reported(self):
        g, __ = _countdown_graph([(0, 1)])
        stats = run_graph(g)
        assert set(stats.tiles) == {"src", "merge", "cond", "dec", "sink"}

    def test_streams_closed_after_run(self):
        g, __ = _countdown_graph([(i, 2) for i in range(10)])
        run_graph(g)
        assert all(s.closed() for s in g.streams)

    def test_summary_renders(self):
        g, __ = _countdown_graph([(0, 1)])
        stats = run_graph(g)
        text = stats.summary()
        assert "cycles:" in text and "tile merge" in text
