"""Hash function properties."""

from hypothesis import given, strategies as st

from repro.structures import bucket_of, hash32, is_power_of_two, radix_of


class TestHash32:
    def test_deterministic(self):
        assert hash32(12345) == hash32(12345)

    def test_range(self):
        for k in (0, 1, 2 ** 31, 2 ** 32 - 1, -5):
            assert 0 <= hash32(k) < 2 ** 32

    def test_avalanche_on_adjacent_keys(self):
        # Adjacent keys must land far apart — the scrambling that takes
        # skewed distributions to uniform (§II-A).
        h = [hash32(k) for k in range(64)]
        assert len(set(h)) == 64
        # Popcount of XOR between neighbours should be near 16/32 bits.
        diffs = [bin(h[i] ^ h[i + 1]).count("1") for i in range(63)]
        assert sum(diffs) / len(diffs) > 10

    def test_tuple_keys_supported(self):
        assert 0 <= hash32(("a", 3)) < 2 ** 32

    @given(st.integers())
    def test_always_u32(self, k):
        assert 0 <= hash32(k) < 2 ** 32


class TestBucketing:
    def test_bucket_in_range(self):
        for k in range(1000):
            assert 0 <= bucket_of(k, 37) < 37

    def test_radix_in_range(self):
        for k in range(1000):
            assert 0 <= radix_of(k, 64) < 64

    def test_uniformity_under_skew(self):
        # Sequential (maximally skewed) keys spread evenly across radix
        # partitions — the paper's load-balance argument (§IV-A).
        counts = [0] * 16
        n = 16_000
        for k in range(n):
            counts[radix_of(k, 16)] += 1
        mean = n / 16
        assert max(counts) < 1.15 * mean
        assert min(counts) > 0.85 * mean

    @given(st.integers(min_value=1, max_value=20))
    def test_power_of_two_detection(self, p):
        assert is_power_of_two(1 << p)
        assert not is_power_of_two((1 << p) + 1) or p == 0

    def test_zero_not_power_of_two(self):
        assert not is_power_of_two(0)
