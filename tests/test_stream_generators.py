"""Live stream generators feeding the continuous-analytics path."""

from repro.db import Table
from repro.db.operators import hash_group_by
from repro.workloads.generators import (
    driver_status_stream,
    ride_request_stream,
    take,
)
from repro.workloads.rideshare import GRID, N_METRICS
from repro.workloads.streaming import StreamingAnalytics


class TestGenerators:
    def test_time_ordered(self):
        events = take(ride_request_stream(start_time=0), 200)
        times = [e[5] for e in events]
        assert times == sorted(times)

    def test_deterministic_under_seed(self):
        a = take(ride_request_stream(0, seed=3), 50)
        b = take(ride_request_stream(0, seed=3), 50)
        assert a == b

    def test_ids_monotone(self):
        events = take(driver_status_stream(0), 100)
        assert [e[0] for e in events] == list(range(100))

    def test_coordinates_on_grid(self):
        for e in take(ride_request_stream(0), 100):
            assert 0 <= e[2] < GRID and 0 <= e[3] < GRID

    def test_status_row_shape(self):
        e = take(driver_status_stream(0), 1)[0]
        assert len(e) == 5 + N_METRICS

    def test_mean_interarrival_scales_time(self):
        fast = take(ride_request_stream(0, mean_interarrival=1.0), 500)
        slow = take(ride_request_stream(0, mean_interarrival=10.0), 500)
        assert slow[-1][5] > 3 * fast[-1][5]


class TestFeedIntoStreamingAnalytics:
    def test_generated_feed_drives_standing_query(self):
        table = Table.from_columns(
            "rideReq", reqId=[], riderId=[], x=[], y=[], seats=[],
            time=[])
        s = StreamingAnalytics(table, "time", index_batch=64)
        s.register(
            "by_seats", window=100,
            body=lambda w, ctx: hash_group_by(
                w, ["seats"], {"n": ("count", None)}, ctx))
        s.ingest(take(ride_request_stream(start_time=1), 500))
        out = s.evaluate("by_seats")
        assert sum(n for __, n in out.rows) == s.window_rows(100)
        assert {seats for seats, __ in out.rows} <= {1, 2, 4}
