"""Property-based validation of the lowered (on-fabric) operators."""

from hypothesis import given, settings, strategies as st

from repro.db import Table
from repro.db.lowering import (
    lower_filter,
    lower_group_count,
    lower_hash_join,
)
from repro.db.operators import hash_group_by, hash_join, scan_filter

keys = st.lists(st.integers(0, 12), min_size=0, max_size=50)


class TestLoweredProperties:
    @given(keys)
    @settings(max_examples=15, deadline=None)
    def test_filter_property(self, values):
        t = Table.from_columns("t", a=values)
        lowered = lower_filter(t, lambda r: r[0] % 2 == 0,
                               engine="functional")
        functional = scan_filter(t, lambda r: r[0] % 2 == 0)
        assert sorted(lowered.table.rows) == sorted(functional.rows)

    @given(keys, keys)
    @settings(max_examples=10, deadline=None)
    def test_join_property(self, lk, rk):
        left = Table.from_columns("l", k=lk)
        right = Table.from_columns("r", k=rk)
        lowered = lower_hash_join(left, right, "k", "k",
                                  n_partitions=2, engine="functional")
        functional = hash_join(left, right, "k", "k")
        assert sorted(lowered.table.rows) == sorted(functional.rows)

    @given(keys)
    @settings(max_examples=15, deadline=None)
    def test_group_count_property(self, values):
        t = Table.from_columns("t", g=values)
        lowered = lower_group_count(t, "g", n_groups=13,
                                    engine="functional")
        functional = hash_group_by(t, ["g"], {"count": ("count", None)})
        assert sorted(lowered.table.rows) == sorted(functional.rows)
