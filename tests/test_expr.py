"""Expression IR + batch compiler (``repro.dataflow.expr``).

Pins the ISSUE 10 tentpole from every side:

* 50-seed differential fuzz: ``Expr.evaluate`` (the interpreted
  reference) vs ``scalar`` vs ``compile_batch`` over random expression
  trees and record batches, including NaN, overflow-sized ints, and the
  empty batch; a Hypothesis pass fuzzes the arithmetic fragment.
* The specialized compiled forms (filter/split/requests/enqueue) against
  the same reference.
* ``Hash32`` bit-identical to ``structures.hashing.hash32`` (and the
  bucket/radix helpers to their namesakes).
* Four-way scheduler parity (exhaustive / event / event+burst / vector)
  for lambda-fused graphs, ramp windows, and ``SortedMergeTile``
  (including a subclass inheriting the ``lowering_contract``).
* ``Lowering.revalidate`` — the memoized dispatch decision — accepts an
  unchanged tile set and rejects every signature change.
* Compiled-expression coverage: every Q1-Q9 scan predicate and every
  pjoin catalog predicate is an ``Expr``, and the hash-table build/probe
  pipelines (the serving hot path) contain zero opaque closures outside
  the documented RMW escape hatch.
"""

import math
import pickle
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.dataflow import (
    Engine,
    FilterTile,
    Graph,
    MapTile,
    SinkTile,
    SourceTile,
)
from repro.dataflow.expr import (
    All,
    AnyOf,
    Arg,
    BinOp,
    Cmp,
    Const,
    Expr,
    Field,
    Hash32,
    InRange,
    InSet,
    Not,
    Select,
    Tup,
    bucket_expr,
    is_expr,
    radix_expr,
    scalar_of,
)
from repro.dataflow.mergesort import SortedMergeTile, merge_sort_graph
from repro.structures import hashing


# ---------------------------------------------------------------------------
# Differential fuzz: evaluate() vs scalar() vs compile_batch()
# ---------------------------------------------------------------------------

def _same(a, b) -> bool:
    """Value equality that treats NaN as equal to itself (the fuzz
    batches contain NaN; compiled and interpreted forms must agree on
    *which* positions are NaN, which plain ``==`` cannot express)."""
    if isinstance(a, tuple) and isinstance(b, tuple):
        return len(a) == len(b) and all(_same(x, y) for x, y in zip(a, b))
    if isinstance(a, float) and isinstance(b, float):
        if math.isnan(a) or math.isnan(b):
            return math.isnan(a) and math.isnan(b)
    if type(a) is not type(b) and not (
            isinstance(a, (bool, int)) and isinstance(b, (bool, int))):
        return False
    return a == b


def _random_value(rng: random.Random):
    roll = rng.random()
    if roll < 0.5:
        return rng.randint(-1000, 1000)
    if roll < 0.7:
        return rng.randint(2**62, 2**66)        # overflow-sized
    if roll < 0.9:
        return rng.uniform(-100.0, 100.0)
    return float("nan")


def _random_int_expr(rng: random.Random, depth: int) -> Expr:
    """An integer-valued expression over ``Field(0..2)`` (int columns)."""
    if depth <= 0 or rng.random() < 0.3:
        if rng.random() < 0.6:
            return Field(rng.randint(0, 2))
        return Const(rng.randint(-50, 50))
    roll = rng.random()
    if roll < 0.15:
        return Hash32(_random_int_expr(rng, depth - 1))
    if roll < 0.3:
        cond = _random_bool_expr(rng, depth - 1)
        return Select(cond, _random_int_expr(rng, depth - 1),
                      _random_int_expr(rng, depth - 1))
    op = rng.choice(["+", "-", "*", "&", "|", "^", "<<", ">>",
                     "//", "%"])
    left = _random_int_expr(rng, depth - 1)
    if op in ("//", "%"):
        right = Const(rng.choice([1, 2, 3, 7, 16, -3]))
    elif op in ("<<", ">>"):
        right = Const(rng.randint(0, 8))
    else:
        right = _random_int_expr(rng, depth - 1)
    return BinOp(op, left, right)


def _random_bool_expr(rng: random.Random, depth: int) -> Expr:
    roll = rng.random()
    if depth <= 0 or roll < 0.25:
        op = rng.choice(["<", "<=", ">", ">=", "==", "!="])
        return Cmp(op, _random_int_expr(rng, 0), _random_int_expr(rng, 0))
    if roll < 0.4:
        return InSet(_random_int_expr(rng, depth - 1),
                     frozenset(rng.sample(range(-20, 20), 5)))
    if roll < 0.55:
        lo = rng.choice([None, rng.randint(-40, 0)])
        hi = rng.choice([None, rng.randint(1, 40)])
        return InRange(_random_int_expr(rng, depth - 1), lo, hi)
    if roll < 0.7:
        return Not(_random_bool_expr(rng, depth - 1))
    terms = tuple(_random_bool_expr(rng, depth - 1)
                  for __ in range(rng.randint(0, 3)))
    return (All if rng.random() < 0.5 else AnyOf)(terms)


def _random_expr(rng: random.Random) -> Expr:
    roll = rng.random()
    if roll < 0.4:
        return _random_int_expr(rng, 3)
    if roll < 0.7:
        return _random_bool_expr(rng, 3)
    if roll < 0.9:
        return Tup(tuple(_random_int_expr(rng, 2)
                         for __ in range(rng.randint(0, 3))))
    # Float-bearing arithmetic (exercises NaN propagation).
    op = rng.choice(["+", "-", "*"])
    return BinOp(op, Field(3), _random_int_expr(rng, 1))


def _random_batch(rng: random.Random):
    n = rng.choice([0, 1, 3, 16, 40])           # includes the empty batch
    return [(rng.randint(-1000, 1000), rng.randint(-1000, 1000),
             rng.randint(-1000, 1000), _random_value(rng))
            for __ in range(n)]


class TestDifferentialFuzz:
    @pytest.mark.parametrize("seed", range(50))
    def test_scalar_and_batch_match_evaluate(self, seed):
        rng = random.Random(seed)
        for __ in range(8):
            expr = _random_expr(rng)
            batch = _random_batch(rng)
            expected = [expr.evaluate(rec) for rec in batch]
            scalar = expr.scalar()
            got_scalar = [scalar(rec) for rec in batch]
            got_batch = expr.compile_batch()(batch)
            assert len(got_batch) == len(expected)
            for exp, s, b in zip(expected, got_scalar, got_batch):
                assert _same(s, exp)
                assert _same(b, exp)

    def test_overflow_is_arbitrary_precision(self):
        # numpy int64 would wrap here; generated Python must not.
        expr = (Field(0) * Field(0)) + 1
        rec = (2**62,)
        assert expr.evaluate(rec) == 2**124 + 1
        assert expr.compile_batch()([rec]) == [2**124 + 1]

    def test_nan_comparisons_match(self):
        nan = float("nan")
        expr = Field(0) < 5
        for rec in [(nan,), (1.0,), (7.0,)]:
            assert expr.compile_batch()([rec]) == [expr.evaluate(rec)]
        rng = InRange(Field(0), 0, 10)
        assert rng.evaluate((nan,)) is False
        assert rng.compile_batch()([(nan,)]) == [False]

    @given(st.lists(st.tuples(st.integers(-10**9, 10**9),
                              st.integers(-10**9, 10**9)), max_size=40),
           st.integers(-100, 100))
    @settings(max_examples=30, deadline=None)
    def test_hypothesis_arith_fragment(self, batch, k):
        expr = ((Field(0) + Const(k)) * Field(1)) - (Field(0) ^ Field(1))
        assert expr.compile_batch()(batch) == [expr.evaluate(r)
                                               for r in batch]


class TestCompiledForms:
    PRED = AnyOf((Cmp("<", Field(0), Const(0)),
                  InSet(Field(1), frozenset({1, 5, 9}))))

    def _batch(self, seed=7, n=64):
        rng = random.Random(seed)
        return [(rng.randint(-10, 10), rng.randint(0, 10))
                for __ in range(n)]

    def test_compile_filter(self):
        batch = self._batch()
        expected = [r for r in batch if self.PRED.evaluate(r)]
        assert self.PRED.compile_filter()(batch) == expected
        assert self.PRED.filter_batch([]) == []

    def test_compile_split(self):
        batch = self._batch()
        passed, failed = self.PRED.compile_split()(batch)
        assert passed == [r for r in batch if self.PRED.evaluate(r)]
        assert failed == [r for r in batch if not self.PRED.evaluate(r)]
        assert self.PRED.compile_split()([]) == ([], [])

    def test_compile_batch_skip_none(self):
        expr = Select(Field(0) >= 0, Tup((Field(0),)), Const(None))
        batch = [(-2,), (3,), (0,), (-1,)]
        assert expr.compile_batch(skip_none=True)(batch) == [(3,), (0,)]

    @pytest.mark.parametrize("base,banks", [(0, 16), (5, 16), (3, 12)])
    def test_compile_requests(self, base, banks):
        addr = Field(0) + 2
        batch = [(i * 3,) for i in range(20)]
        got = addr.compile_requests(base, banks)(batch)
        assert got == [((base + addr.evaluate(r)) % banks,
                        addr.evaluate(r), r) for r in batch]

    def test_compile_enqueue_strips_lanes_and_masks(self):
        addr = Field(0)
        enq = addr.compile_enqueue(0, 16, depth=8)
        slots = [[] for __ in range(4)]
        masks = [0] * 4
        batch = [(1,), (17,), (5,), (16,)]
        assert enq(batch, slots, masks) is True
        # One record per lane, bank stored as a pre-shifted one-hot bit.
        assert slots[0] == [(1 << 1, 1, (1,))]
        assert slots[1] == [(1 << 1, 17, (17,))]
        assert slots[2] == [(1 << 5, 5, (5,))]
        assert slots[3] == [(1 << 0, 16, (16,))]
        assert masks == [2, 2, 32, 1]

    def test_compile_enqueue_all_or_nothing(self):
        addr = Field(0)
        enq = addr.compile_enqueue(0, 16, depth=2)
        full = [(1 << 0, 0, (0,)), (1 << 0, 0, (0,))]
        slots = [list(full), []]
        masks = [1, 0]
        assert enq([(3,), (4,)], slots, masks) is False
        assert slots == [full, []]          # nothing appended
        assert masks == [1, 0]

    def test_empty_batch_everywhere(self):
        expr = Field(0) + 1
        assert expr.compile_batch()([]) == []
        assert expr.compile_requests(0, 16)([]) == []
        assert expr.compile_enqueue(0, 16, 4)([], [], []) is True


class TestHashParity:
    KEYS = [0, 1, 17, 2**31, 2**40 + 3, -5, "rider_7", (3, 4)]

    def test_hash32_matches_reference(self):
        expr = Hash32(Arg(0))
        for key in self.KEYS:
            assert expr.evaluate(key) == hashing.hash32(key)
            assert expr.scalar()(key) == hashing.hash32(key)

    def test_bucket_and_radix_match(self):
        for key in [0, 3, 99, 2**33]:
            assert (bucket_expr(Arg(0), 24).evaluate(key)
                    == hashing.bucket_of(key, 24))
            assert (radix_expr(Arg(0), 16).evaluate(key)
                    == hashing.radix_of(key, 16))


class TestExprProtocol:
    def test_call_compiles_scalar(self):
        expr = Field(0) * 2
        assert expr((21,)) == 42

    def test_scalar_arity_padding(self):
        # An Expr standing in for a combine ignores the extra argument.
        expr = Field(0) + 1
        assert expr.scalar(2)((4,), "ignored") == 5

    def test_structural_equality_and_hash_reuse(self):
        a = (Field(0) + 1) * Field(1)
        b = (Field(0) + 1) * Field(1)
        assert a == b                       # dataclass equality
        assert a is not b
        # Structurally identical exprs share one compiled code object.
        fa, fb = a.compile_batch(), b.compile_batch()
        assert fa.__code__ is fb.__code__
        assert fa is not fb                 # separate constant pools

    def test_eq_builds_comparison_node(self):
        node = Field(0).eq(3)
        assert isinstance(node, Cmp)
        assert node.evaluate((3,)) is True

    def test_pickle_drops_compiled_cache(self):
        expr = Hash32(Field(0)) % 64
        expr.compile_batch()                # populate cache
        clone = pickle.loads(pickle.dumps(expr))
        assert clone == expr
        assert "_compiled" not in clone.__dict__
        assert clone.compile_batch()([(9,)]) == [expr.evaluate((9,))]

    def test_scalar_of_passthrough(self):
        fn = lambda r: r[0]                 # noqa: E731
        assert scalar_of(fn) is fn
        assert scalar_of(Field(0))((7,)) == 7
        assert is_expr(Field(0)) and not is_expr(fn)


# ---------------------------------------------------------------------------
# Four-way scheduler parity for the new window shapes
# ---------------------------------------------------------------------------

MODES = [("exhaustive", False), ("event", False), ("event", True),
         ("vector", True)]


def _four_way(factory):
    stats = [Engine(factory(), scheduler=s, burst=b).run()
             for s, b in MODES]
    golden = stats[0]
    for other in stats[1:]:
        assert other == golden
    return golden


def _expr_graph(n_chains=6, n_records=600):
    """Wide Expr-only graph: every callable lambda-fuses in windows."""
    g = Graph("expr_wide")
    for c in range(n_chains):
        src = g.add(SourceTile(f"src{c}",
                               [(i, c) for i in range(n_records)]))
        m = g.add(MapTile(f"m{c}", Tup((Field(0) + 1, Field(1)))))
        f = g.add(FilterTile(f"f{c}", (Field(0) % 7).ne(0)))
        sink = g.add(SinkTile(f"sink{c}"))
        g.connect(src, m)
        g.connect(m, f)
        g.connect(f, sink, producer_port=0)
        f.drop_output(1)
    return g


class _KeyedMerge(SortedMergeTile):
    """Subclass customizing only the key — inherits the contract."""


def _sorted_merge_graph(cls=SortedMergeTile):
    g = Graph("smerge")
    a = g.add(SourceTile("a", [(v,) for v in range(0, 600, 2)]))
    b = g.add(SourceTile("b", [(v,) for v in range(1, 600, 2)]))
    merge = g.add(cls("merge", Field(0)))
    sink = g.add(SinkTile("sink"))
    g.connect(a, merge)
    g.connect(b, merge)
    g.connect(merge, sink)
    return g


class TestFourWayParity:
    def test_lambda_fused_graph(self):
        _four_way(_expr_graph)
        eng = Engine(_expr_graph(), scheduler="vector", burst=True)
        eng.run()
        lowered = sum(sum(w) for k, w in eng.burst_windows.items()
                      if k in ("vector", "ramp"))
        assert lowered > 8
        assert eng._vector_lowering.fallbacks == 0
        # Every non-source/sink kernel dispatched to an Expr-fused form.
        kinds = eng._vector_lowering.kinds
        assert all("+expr" in k for k in kinds
                   if k.startswith(("map", "filter")))

    def test_ramp_window_runs_and_matches(self):
        _four_way(lambda: _expr_graph(n_records=4000))
        eng = Engine(_expr_graph(n_records=4000), scheduler="vector",
                     burst=True)
        eng.run()
        assert "ramp" in eng.burst_windows or "vector" in eng.burst_windows

    def test_sorted_merge_tile(self):
        _four_way(_sorted_merge_graph)
        eng = Engine(_sorted_merge_graph(), scheduler="vector", burst=True)
        eng.run()
        g = eng.graph
        assert [r[0] for r in g.tile("sink").records] == list(range(600))
        assert eng._vector_lowering is None or \
            "fallback" not in eng._vector_lowering.kinds

    def test_sorted_merge_subclass_inherits_contract(self):
        _four_way(lambda: _sorted_merge_graph(_KeyedMerge))
        eng = Engine(_sorted_merge_graph(_KeyedMerge), scheduler="vector",
                     burst=True)
        eng.run()
        lowering = eng._vector_lowering
        if lowering is not None:
            assert "fallback" not in lowering.kinds

    def test_mergesort_tree_expr_key(self):
        runs = [sorted((i * 7 + k) % 100 for i in range(40))
                for k in range(4)]
        _four_way(lambda: merge_sort_graph(
            "msort", [[(v,) for v in run] for run in runs], key=Field(0)))


# ---------------------------------------------------------------------------
# Lowering dispatch memoization (satellite 1)
# ---------------------------------------------------------------------------

class TestLoweringMemo:
    def _lowered_engine(self):
        eng = Engine(_expr_graph(), scheduler="vector", burst=True)
        eng.run()
        assert eng._vector_lowering is not None
        return eng

    def test_revalidate_accepts_unchanged_tiles(self):
        eng = self._lowered_engine()
        lowering = eng._vector_lowering
        # The engine hands the lowering its tick-ordered list; a fresh
        # copy with the same tiles in the same order revalidates.
        tiles = list(lowering.tiles)
        assert lowering.revalidate(tiles) is True
        # The new list object is adopted so the window's identity check
        # (``lowering.tiles is tiles``) short-circuits next entry.
        assert lowering.tiles is tiles

    def test_revalidate_rejects_changed_tile_set(self):
        eng = self._lowered_engine()
        lowering = eng._vector_lowering
        tiles = list(lowering.tiles)
        assert lowering.revalidate(tiles[:-1]) is False
        assert lowering.revalidate(list(reversed(tiles))) is False
        # Tick order matters (kernels are positional), so graph order —
        # which differs from tick order — must also be rejected.
        graph_order = list(eng.graph.tiles)
        if [id(t) for t in graph_order] != [id(t) for t in tiles]:
            assert lowering.revalidate(graph_order) is False

    def test_revalidate_rejects_hook_changes(self):
        from repro.observability import Tracer
        eng = self._lowered_engine()
        lowering = eng._vector_lowering
        tiles = list(lowering.tiles)
        victim = next(t for t in tiles if isinstance(t, FilterTile))
        victim.tracer = Tracer()
        try:
            assert lowering.revalidate(tiles) is False
        finally:
            victim.tracer = None

    def test_revalidate_rejects_source_mutation(self):
        eng = self._lowered_engine()
        lowering = eng._vector_lowering
        tiles = list(lowering.tiles)
        src = next(t for t in tiles if isinstance(t, SourceTile))
        records = src._records
        src._records = records + [(999, 0)]
        try:
            assert lowering.revalidate(tiles) is False
        finally:
            src._records = records


# ---------------------------------------------------------------------------
# Compiled-expression coverage of the serving hot path (acceptance)
# ---------------------------------------------------------------------------

class TestCompiledExpressionCoverage:
    def test_catalog_queries_filter_through_exprs(self, tiny_rideshare,
                                                  monkeypatch):
        """Every scan predicate Q1-Q9 hands to ``scan_filter`` is an
        ``Expr`` — zero opaque predicate closures in the catalog."""
        from repro.workloads import queries as Q

        seen = []
        real = Q.scan_filter

        def spy(table, pred, *args, **kwargs):
            seen.append(pred)
            return real(table, pred, *args, **kwargs)

        monkeypatch.setattr(Q, "scan_filter", spy)
        for name in sorted(Q.QUERIES):
            Q.run_query(name, tiny_rideshare)
        assert len(seen) >= 6               # q1 x2, q3, q4, q7, q9
        opaque = [p for p in seen if not is_expr(p)]
        assert opaque == []

    def test_pjoin_catalog_predicates_are_exprs(self):
        from repro.serving import ServingRuntime

        rt = ServingRuntime()
        pjoins = [j for j in rt.workload.jobs.values()
                  if getattr(j, "kind", None) == "pjoin"]
        assert pjoins
        for job in pjoins:
            evaluator = job.predicate.evaluator(job.joined_schema())
            assert is_expr(evaluator)

    def test_planner_evaluator_is_expr(self):
        from repro.db.planner import Predicate

        class Schema:
            cols = ("a", "b", "c")

            def index(self, name):
                return self.cols.index(name)

        pred = (Predicate.of(("in", "a", (1, 2, 3)))
                & Predicate.ge("b", 10) & Predicate.lt("c", 99))
        evaluator = pred.evaluator(Schema())
        assert is_expr(evaluator)
        assert evaluator((1, 10, 5)) is True
        assert evaluator((4, 10, 5)) is False

    def test_hashtable_pipelines_have_no_opaque_closures(self):
        """The build/probe pipelines — the saturated serving hot path —
        carry Exprs on every map/filter/addr/combine; only the RMW
        closure (CAS) keeps the documented legacy escape hatch."""
        from repro.memory.dram import DramTile
        from repro.memory.spad_tile import ScratchpadTile
        from repro.structures.hashtable import HashTableDataflow

        ht = HashTableDataflow(n_buckets=16, spad_node_capacity=64,
                               overflow_capacity=32, name="cov")
        build = ht.build_graph([(k, k * 10) for k in range(8)])
        Engine(build).run()
        probe = ht.probe_graph([(i, i) for i in range(8)], emit_all=True)
        for graph in (build, probe):
            for tile in graph.tiles:
                if isinstance(tile, MapTile):
                    assert is_expr(tile.fn), tile.name
                elif isinstance(tile, FilterTile):
                    assert is_expr(tile.predicate), tile.name
                elif isinstance(tile, (ScratchpadTile, DramTile)):
                    for port in tile.ports:
                        cfg = port.config
                        if cfg.mode == "rmw":
                            continue        # CAS/FAA: documented escape
                        assert is_expr(cfg.addr), tile.name
                        if cfg.combine is not None:
                            assert is_expr(cfg.combine), tile.name
