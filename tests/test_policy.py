"""Operator policies: Gorgon's weaker algorithms produce identical query
results at higher cost — the premise of the paper's baseline comparison."""

import pytest

from repro.db import ExecutionContext
from repro.perf import CostModel
from repro.workloads import QUERIES, RideshareConfig, generate, run_query
from repro.workloads.policy import AUROCHS_POLICY, GORGON_POLICY


@pytest.fixture(scope="module")
def small_data():
    cfg = RideshareConfig(n_drivers=50, n_riders=100, n_locations=16,
                          n_rides=500, n_ride_reqs=100,
                          n_driver_status=100)
    return generate(cfg)


def _rows_equal(a, b):
    """Row multiset equality with float tolerance (aggregation order
    differs between hash and sort grouping)."""
    if len(a) != len(b):
        return False
    for x, y in zip(sorted(a), sorted(b)):
        if len(x) != len(y):
            return False
        for u, v in zip(x, y):
            if isinstance(u, float) or isinstance(v, float):
                if abs(u - v) > 1e-9 * max(1.0, abs(u), abs(v)):
                    return False
            elif u != v:
                return False
    return True


class TestPolicyEquivalence:
    @pytest.mark.parametrize("name", sorted(QUERIES))
    def test_gorgon_results_match_aurochs(self, small_data, name):
        aurochs = run_query(name, small_data, policy=AUROCHS_POLICY)
        gorgon = run_query(name, small_data, policy=GORGON_POLICY)
        assert aurochs.schema.fields == gorgon.schema.fields
        assert _rows_equal(aurochs.rows, gorgon.rows), name


class TestPolicyCost:
    def test_gorgon_spatial_queries_do_more_work(self, small_data):
        # Spatial-heavy queries pay the all-pairs penalty under Gorgon:
        # the processed-record counts (which the cost model prices, and
        # which dominate at real scales) blow up even when tiny-dataset
        # runtimes are overhead-bound.
        # q3's 1-minute recency filter leaves only a handful of rows at
        # this scale, so its factor is small; q1/q6 join full streams.
        for name, factor in (("q1", 2), ("q6", 2), ("q3", 1)):
            actx, gctx = ExecutionContext(), ExecutionContext()
            run_query(name, small_data, actx, policy=AUROCHS_POLICY)
            run_query(name, small_data, gctx, policy=GORGON_POLICY)
            assert (gctx.events.records_processed
                    > factor * actx.events.records_processed), name

    def test_gorgon_traces_use_weaker_operators(self, small_data):
        gctx = ExecutionContext()
        run_query("q7", small_data, gctx, policy=GORGON_POLICY)
        ops = {t.op for t in gctx.traces}
        assert "sort_merge_join" in ops
        assert "sort_group_by" in ops
        assert "hash_join" not in ops

    def test_aurochs_traces_use_hash_operators(self, small_data):
        actx = ExecutionContext()
        run_query("q7", small_data, actx, policy=AUROCHS_POLICY)
        ops = {t.op for t in actx.traces}
        assert "hash_join" in ops

    def test_policy_names(self):
        assert AUROCHS_POLICY.name == "aurochs"
        assert GORGON_POLICY.name == "gorgon"
