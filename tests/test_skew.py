"""Skewed key generators and the §IV-A load-balancing property."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.skew import (
    balance,
    clustered_keys,
    partition_sizes_on_hash,
    partition_sizes_on_raw_bits,
    strided_keys,
    zipf_keys,
)


class TestGenerators:
    def test_zipf_in_range(self):
        keys = zipf_keys(1000, key_space=100, s=1.2)
        assert all(0 <= k < 100 for k in keys)

    def test_zipf_is_skewed(self):
        keys = zipf_keys(10_000, key_space=1000, s=1.5)
        from collections import Counter
        top = Counter(keys).most_common(1)[0][1]
        assert top > 10_000 / 1000 * 5  # far above uniform share

    def test_zipf_deterministic(self):
        assert zipf_keys(100, 50, seed=7) == zipf_keys(100, 50, seed=7)

    def test_zipf_validation(self):
        with pytest.raises(ValueError):
            zipf_keys(10, 0)
        with pytest.raises(ValueError):
            zipf_keys(10, 10, s=0)

    def test_strided(self):
        assert strided_keys(4, stride=8, base=3) == [3, 11, 19, 27]

    def test_clustered_near_centers(self):
        keys = clustered_keys(1000, centers=[10_000], spread=100, seed=1)
        assert sum(1 for k in keys if 9000 < k < 11_000) > 950


class TestBalance:
    def test_perfect_balance_is_one(self):
        assert balance([10, 10, 10, 10]) == 1.0

    def test_empty_is_one(self):
        assert balance([0, 0]) == 1.0

    def test_worst_case(self):
        assert balance([40, 0, 0, 0]) == 4.0

    def test_strided_defeats_raw_bits_not_hash(self):
        keys = strided_keys(8000, stride=16)
        assert balance(partition_sizes_on_raw_bits(keys, 16)) == 16.0
        assert balance(partition_sizes_on_hash(keys, 16)) < 1.2

    @given(st.integers(1, 64), st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_property_hash_balances_any_stride(self, stride, base):
        keys = strided_keys(4000, stride=max(1, stride), base=base)
        assert balance(partition_sizes_on_hash(keys, 8)) < 1.5

    def test_partition_sizes_conserve_count(self):
        keys = zipf_keys(5000, 1 << 12, s=1.1, seed=2)
        assert sum(partition_sizes_on_hash(keys, 16)) == 5000
        assert sum(partition_sizes_on_raw_bits(keys, 16)) == 5000
