"""SpillTile (§IV-C DRAM thread queue), window splitting, and the
functional engine's equivalence with the cycle engine."""

import random

import pytest

from repro.dataflow import (
    Graph,
    LANES,
    MapTile,
    SinkTile,
    SourceTile,
    run_functional,
    run_graph,
)
from repro.errors import SimulationError
from repro.structures import (
    HashTableDataflow,
    PackedRTree,
    RTreeDataflow,
    SpillTile,
    intersects,
    point_rect,
    rect,
    split_window,
)


def _points(n, extent=2000, seed=90):
    rng = random.Random(seed)
    return [(point_rect(rng.randrange(extent), rng.randrange(extent)), i)
            for i in range(n)]


class TestSpillTile:
    def _spill_graph(self, n, capacity):
        g = Graph("spill")
        src = g.add(SourceTile("src", [(i,) for i in range(n)]))
        spill = g.add(SpillTile("spill", on_chip_capacity=capacity,
                                dram_latency=20))
        sink = g.add(SinkTile("sink"))
        g.connect(src, spill)
        g.connect(spill, sink)
        return g, spill, sink

    def test_all_records_preserved(self):
        g, spill, sink = self._spill_graph(500, capacity=8)
        run_graph(g)
        assert sorted(r[0] for r in sink.records) == list(range(500))

    def test_overflow_spills_to_dram(self):
        # Capacity below the vector width: bursts must overflow to DRAM.
        g, spill, sink = self._spill_graph(500, capacity=8)
        run_graph(g)
        assert spill.spilled > 0
        assert spill.dram_stats.write_bytes > 0

    def test_no_spill_when_capacity_sufficient(self):
        g, spill, sink = self._spill_graph(32, capacity=1024)
        run_graph(g)
        assert spill.spilled == 0

    def test_spill_latency_extends_runtime(self):
        g1, __, __s = self._spill_graph(200, capacity=4)
        g2, __2, __s2 = self._spill_graph(200, capacity=1024)
        t_spill = run_graph(g1).cycles
        t_nospill = run_graph(g2).cycles
        assert t_spill > t_nospill

    def test_rtree_window_with_spill_matches_without(self):
        pts = _points(400)
        tree = PackedRTree.bulk_load(pts, fanout=4)
        q = [(0, (0, 0, 2000, 2000))]
        g_plain = RTreeDataflow(tree).window_graph(q)
        g_spill = RTreeDataflow(tree).window_graph(q, spill=True,
                                                   on_chip_capacity=8)
        run_graph(g_plain)
        run_graph(g_spill)
        assert (sorted(g_plain.tile("hits").records)
                == sorted(g_spill.tile("hits").records))
        assert g_spill.tile("spill").spilled > 0


class TestSplitWindow:
    def test_parts_cover_query(self):
        q = rect(0, 0, 999, 499)
        parts = split_window(q, 8)
        assert len(parts) == 8
        area = sum((x1 - x0 + 1) * (y1 - y0 + 1) for x0, y0, x1, y1 in parts)
        assert area == 1000 * 500

    def test_parts_disjoint(self):
        parts = split_window(rect(0, 0, 127, 127), 4)
        for i, a in enumerate(parts):
            for b in parts[i + 1:]:
                assert not intersects(a, b)

    def test_single_stream_identity(self):
        q = rect(3, 4, 10, 12)
        assert split_window(q, 1) == [q]

    def test_invalid_streams(self):
        with pytest.raises(ValueError):
            split_window(rect(0, 0, 1, 1), 0)

    def test_parallel_window_queries_equal_single(self):
        pts = _points(300, seed=91)
        tree = PackedRTree.bulk_load(pts, fanout=8)
        q = rect(100, 100, 1500, 900)
        single = sorted(v for __, v in tree.window_query(q))
        multi = []
        for part in split_window(q, 6):
            multi.extend(v for __, v in tree.window_query(part))
        assert sorted(multi) == single


class TestFunctionalEngine:
    def test_matches_cycle_engine_on_hash_build(self):
        rng = random.Random(92)
        pairs = [(rng.randrange(40), i) for i in range(150)]
        a = HashTableDataflow(n_buckets=16, spad_node_capacity=64,
                              overflow_capacity=256)
        b = HashTableDataflow(n_buckets=16, spad_node_capacity=64,
                              overflow_capacity=256)
        run_graph(a.build_graph(pairs))
        run_functional(b.build_graph(pairs))
        assert sorted(a.contents()) == sorted(b.contents())

    def test_matches_cycle_engine_on_probe(self):
        rng = random.Random(93)
        pairs = [(rng.randrange(30), i) for i in range(120)]
        queries = [(q, rng.randrange(40)) for q in range(80)]
        results = []
        for runner in (run_graph, run_functional):
            ht = HashTableDataflow(n_buckets=16, spad_node_capacity=256)
            ht.load(pairs)
            g = ht.probe_graph(queries, emit_all=True)
            runner(g)
            results.append(sorted(g.tile("hits").records))
        assert results[0] == results[1]

    def test_functional_is_fewer_steps(self):
        rng = random.Random(94)
        pairs = [(rng.randrange(64), i) for i in range(256)]
        a = HashTableDataflow(n_buckets=64, spad_node_capacity=512)
        b = HashTableDataflow(n_buckets=64, spad_node_capacity=512)
        cyc = run_graph(a.build_graph(pairs)).cycles
        fun = run_functional(b.build_graph(pairs)).cycles
        assert fun < cyc

    def test_functional_deadlock_detection(self):
        g = Graph("dead")
        src = g.add(SourceTile("src", [(1,)]))
        sink = g.add(SinkTile("sink"))
        g.connect(src, sink)
        sink.tick = lambda cycle: False
        sink.idle = lambda: False
        with pytest.raises(SimulationError):
            run_functional(g)

    def test_simple_linear_pipeline(self):
        g = Graph("lin")
        src = g.add(SourceTile("src", [(i,) for i in range(100)]))
        m = g.add(MapTile("m", lambda r: (r[0] + 1,)))
        sink = g.add(SinkTile("sink"))
        g.connect(src, m)
        g.connect(m, sink)
        run_functional(g)
        assert sorted(r[0] for r in sink.records) == list(range(1, 101))
