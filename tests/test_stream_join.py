"""Streaming joins: symmetric hash join and sliding-window join (§IV-A)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.db import ExecutionContext, Table
from repro.db.operators import (
    hash_join,
    sliding_window_join,
    symmetric_hash_join,
)


def _streams(seed=70, n=100, key_space=15):
    rng = random.Random(seed)
    left = Table.from_columns(
        "l", k=[rng.randrange(key_space) for __ in range(n)],
        lv=list(range(n)))
    right = Table.from_columns(
        "r", k=[rng.randrange(key_space) for __ in range(n)],
        rv=[1000 + i for i in range(n)])
    return left, right


class TestSymmetricHashJoin:
    def test_result_equals_batch_join(self):
        left, right = _streams()
        sym = symmetric_hash_join(left, right, "k", "k")
        batch = hash_join(left, right, "k", "k")
        assert sorted(sym.rows) == sorted(batch.rows)

    def test_matches_emitted_incrementally(self):
        # A match appears as soon as BOTH records have arrived — the
        # earliest match involves early rows, not the table tails.
        left = Table.from_columns("l", k=[1, 2, 3], lv=[0, 1, 2])
        right = Table.from_columns("r", k=[1, 9, 9], rv=[10, 11, 12])
        out = symmetric_hash_join(left, right, "k", "k")
        assert out.rows[0] == (1, 0, 1, 10)

    def test_duplicate_keys_cross_product(self):
        left = Table.from_columns("l", k=[5, 5], lv=[0, 1])
        right = Table.from_columns("r", k=[5, 5], rv=[2, 3])
        out = symmetric_hash_join(left, right, "k", "k")
        assert len(out) == 4

    def test_uneven_stream_lengths(self):
        left = Table.from_columns("l", k=[1], lv=[0])
        right = Table.from_columns("r", k=[1, 1, 1], rv=[0, 1, 2])
        out = symmetric_hash_join(left, right, "k", "k")
        assert len(out) == 3

    def test_no_duplicate_emissions(self):
        left, right = _streams(seed=71, n=60, key_space=6)
        out = symmetric_hash_join(left, right, "k", "k")
        assert len(out.rows) == len(set(out.rows))

    def test_events_traced(self):
        ctx = ExecutionContext()
        left, right = _streams(seed=72)
        symmetric_hash_join(left, right, "k", "k", ctx)
        t = ctx.traces[-1]
        assert t.op == "symmetric_hash_join"
        assert t.events.rmw_ops == len(left) + len(right)

    @given(st.lists(st.integers(0, 8), max_size=60),
           st.lists(st.integers(0, 8), max_size=60))
    @settings(max_examples=20, deadline=None)
    def test_property_equals_batch(self, lk, rk):
        left = Table.from_columns("l", k=lk)
        right = Table.from_columns("r", k=rk)
        sym = sorted(symmetric_hash_join(left, right, "k", "k").rows)
        brute = sorted((a, b) for a in lk for b in rk if a == b)
        assert sym == brute


class TestSlidingWindowJoin:
    def _timed_streams(self, seed=73, n=80):
        rng = random.Random(seed)
        lt = sorted(rng.randrange(1000) for __ in range(n))
        rt = sorted(rng.randrange(1000) for __ in range(n))
        left = Table.from_columns(
            "l", k=[rng.randrange(10) for __ in range(n)], t=lt)
        right = Table.from_columns(
            "r", k=[rng.randrange(10) for __ in range(n)], t=rt)
        return left, right

    def test_matches_brute_force(self):
        left, right = self._timed_streams()
        out = sliding_window_join(left, right, "k", "k", "t", "t",
                                  window=50)
        expect = sorted(l + r for l in left.rows for r in right.rows
                        if l[0] == r[0] and abs(l[1] - r[1]) <= 50)
        assert sorted(out.rows) == expect

    def test_zero_window_requires_equal_times(self):
        left = Table.from_columns("l", k=[1, 1], t=[10, 20])
        right = Table.from_columns("r", k=[1, 1], t=[10, 30])
        out = sliding_window_join(left, right, "k", "k", "t", "t",
                                  window=0)
        assert out.rows == [(1, 10, 1, 10)]

    def test_wide_window_equals_full_join(self):
        left, right = self._timed_streams(seed=74, n=50)
        windowed = sliding_window_join(left, right, "k", "k", "t", "t",
                                       window=10_000)
        batch = hash_join(left, right, "k", "k")
        assert sorted(windowed.rows) == sorted(batch.rows)

    def test_trace_notes_window(self):
        ctx = ExecutionContext()
        left, right = self._timed_streams(seed=75, n=20)
        sliding_window_join(left, right, "k", "k", "t", "t", window=5,
                            ctx=ctx)
        assert "window=5" in ctx.traces[-1].note
