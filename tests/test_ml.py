"""Shallow ML models used by the benchmark queries."""

import numpy as np
import pytest

from repro.ml import KMeans, LinearRegression, LogisticRegression


class TestLinearRegression:
    def test_predict_is_dot_plus_bias(self):
        m = LinearRegression([1.0, 2.0], bias=3.0)
        assert m.predict([4.0, 5.0]) == pytest.approx(4 + 10 + 3)

    def test_fit_recovers_plane(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(-1, 1, (200, 3))
        y = X @ np.array([2.0, -1.0, 0.5]) + 4.0
        m = LinearRegression.fit(X, y)
        assert np.allclose(m.weights, [2.0, -1.0, 0.5], atol=1e-6)
        assert m.bias == pytest.approx(4.0, abs=1e-6)

    def test_batch_matches_scalar(self):
        m = LinearRegression([0.5, 0.5], bias=1.0)
        X = [[1.0, 2.0], [3.0, 4.0]]
        batch = m.predict_batch(X)
        assert batch[0] == pytest.approx(m.predict(X[0]))
        assert batch[1] == pytest.approx(m.predict(X[1]))

    def test_n_features(self):
        assert LinearRegression([1, 2, 3]).n_features == 3


class TestLogisticRegression:
    def test_proba_in_unit_interval(self):
        m = LogisticRegression([5.0, -5.0], bias=0.0)
        for x in ([10.0, -10.0], [-10.0, 10.0], [0.0, 0.0]):
            assert 0.0 <= m.predict_proba(x) <= 1.0

    def test_decision_boundary(self):
        m = LogisticRegression([1.0], bias=0.0)
        assert m.predict([5.0]) == 1
        assert m.predict([-5.0]) == 0

    def test_fit_separates_linearly_separable(self):
        rng = np.random.default_rng(2)
        X0 = rng.normal(-2, 0.5, (100, 2))
        X1 = rng.normal(2, 0.5, (100, 2))
        X = np.vstack([X0, X1])
        y = [0] * 100 + [1] * 100
        m = LogisticRegression.fit(X, y, epochs=300)
        preds = (m.predict_batch(X) >= 0.5).astype(int)
        assert (preds == y).mean() > 0.95

    def test_extreme_inputs_do_not_overflow(self):
        m = LogisticRegression([1000.0])
        assert m.predict_proba([1000.0]) == pytest.approx(1.0)
        assert m.predict_proba([-1000.0]) == pytest.approx(0.0)


class TestKMeans:
    def test_assigns_nearest_centroid(self):
        m = KMeans([[0.0, 0.0], [10.0, 10.0]])
        assert m.predict([1.0, 1.0]) == 0
        assert m.predict([9.0, 9.0]) == 1

    def test_batch_matches_scalar(self):
        m = KMeans([[0.0], [5.0], [10.0]])
        X = [[1.0], [6.0], [9.5]]
        assert list(m.predict_batch(X)) == [m.predict(x) for x in X]

    def test_fit_finds_clusters(self):
        rng = np.random.default_rng(3)
        a = rng.normal(0, 0.2, (80, 2))
        b = rng.normal(5, 0.2, (80, 2))
        m = KMeans.fit(np.vstack([a, b]), k=2, seed=1)
        la = set(m.predict_batch(a))
        lb = set(m.predict_batch(b))
        assert len(la) == len(lb) == 1 and la != lb

    def test_k_property(self):
        assert KMeans([[0], [1], [2]]).k == 3

    def test_bad_centroids_rejected(self):
        with pytest.raises(ValueError):
            KMeans([0.0, 1.0])
