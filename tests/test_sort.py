"""Tiled external merge sort: correctness and agreement with the
analytical pass/traffic accounting that prices all sort-based operators."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.db.operators.sortutil import charge_sort, sort_passes
from repro.structures import TiledMergeSort, external_sort
from repro.structures.common import StructureEvents


class TestCorrectness:
    def test_sorts_random_data(self, rng):
        data = [rng.randrange(10 ** 6) for __ in range(5000)]
        assert external_sort(data, onchip_rows=128) == sorted(data)

    def test_empty_input(self):
        assert external_sort([]) == []

    def test_single_chunk_no_merge_pass(self):
        sorter = TiledMergeSort(onchip_rows=100)
        sorter.sort(list(range(50, 0, -1)))
        assert sorter.passes_executed == 1

    def test_key_function(self):
        data = [(1, "b"), (3, "a"), (2, "c")]
        out = external_sort(data, key=lambda r: r[0], onchip_rows=2)
        assert [k for k, __ in out] == [1, 2, 3]

    def test_stability_within_runs(self):
        data = [(1, i) for i in range(64)]
        out = external_sort(data, key=lambda r: r[0], onchip_rows=8,
                            radix=2)
        assert sorted(v for __, v in out) == list(range(64))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TiledMergeSort(onchip_rows=0)
        with pytest.raises(ValueError):
            TiledMergeSort(radix=1)

    @given(st.lists(st.integers(), max_size=500),
           st.integers(2, 16), st.integers(2, 8))
    @settings(max_examples=25, deadline=None)
    def test_property_matches_sorted(self, data, onchip, radix):
        assert (external_sort(data, onchip_rows=onchip, radix=radix)
                == sorted(data))


class TestPassAccounting:
    def test_passes_match_analytical_model(self):
        # The executable sorter and sortutil.sort_passes must agree —
        # this is what licenses pricing sorts analytically in fig. 11.
        for n in (100, 10 ** 5, 10 ** 6):
            sorter = TiledMergeSort()
            sorter.sort(list(range(n, 0, -1)))
            assert sorter.passes_executed == sort_passes(n), n

    def test_traffic_matches_charge_sort(self):
        n = 200_000
        sorter = TiledMergeSort()
        sorter.sort(list(range(n, 0, -1)), row_bytes=8)
        analytic = StructureEvents()
        charge_sort(analytic, n, 8)
        assert sorter.events.dram_read_bytes == analytic.dram_read_bytes
        assert sorter.events.dram_write_bytes == analytic.dram_write_bytes

    def test_high_radix_fewer_passes_than_binary(self):
        data = list(range(4096, 0, -1))
        wide = TiledMergeSort(onchip_rows=16, radix=16)
        binary = TiledMergeSort(onchip_rows=16, radix=2)
        wide.sort(list(data))
        binary.sort(list(data))
        # §IV-B: high-radix merges conserve DRAM bandwidth.
        assert wide.passes_executed < binary.passes_executed
        assert (wide.events.dram_read_bytes
                < binary.events.dram_read_bytes)

    def test_pass_count_grows_logarithmically(self):
        small = TiledMergeSort(onchip_rows=16, radix=4)
        large = TiledMergeSort(onchip_rows=16, radix=4)
        small.sort(list(range(256)))
        large.sort(list(range(4096)))
        assert large.passes_executed <= small.passes_executed + 2
