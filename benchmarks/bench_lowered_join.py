"""Cycle-level microbench — a hash join executed entirely on the fabric.

The figure benches price large joins analytically; this bench runs the
*whole* radix-partition → CAS-build → recirculating-probe pipeline on the
cycle engine (via ``repro.db.lowering``) at simulator-friendly sizes and
reports phase-level cycle counts, validating the analytical model's phase
structure against executed cycles.
"""

import random

import pytest

from repro.db import Table
from repro.db.lowering import lower_hash_join
from repro.db.operators import hash_join
from repro.perf import CostModel, kernels

from figutil import emit

N = 512


def _tables(seed=160):
    rng = random.Random(seed)
    left = Table.from_columns(
        "l", k=[rng.randrange(N) for __ in range(N)], lv=list(range(N)))
    right = Table.from_columns(
        "r", k=[rng.randrange(N) for __ in range(N)],
        rv=[N + i for i in range(N)])
    return left, right


def test_lowered_join_cycle_counts(benchmark):
    left, right = _tables()

    def run():
        return lower_hash_join(left, right, "k", "k", n_partitions=4,
                               engine="cycle")

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    reference = hash_join(left, right, "k", "k")
    assert sorted(result.table.rows) == sorted(reference.rows)

    model = CostModel(parallel_streams=1)
    analytic = model.event_cycles(kernels.hash_join_events(N, N)).cycles
    ratio = result.total_cycles / analytic
    emit("lowered_join", [
        f"lowered hash join of {N}x{N} rows:",
        f"  {result.graphs} tile graphs (2 partition phases + "
        f"build/probe per partition)",
        f"  executed cycles: {result.total_cycles}",
        f"  analytical model: {analytic:.0f} cycles "
        f"(ratio {ratio:.2f} — fill overheads at small n)",
    ])
    # The executed/model ratio stays within the calibration band.
    assert 0.5 < ratio < 12.0


def test_lowered_join_functional_engine_faster(benchmark):
    left, right = _tables(seed=161)

    def run():
        return lower_hash_join(left, right, "k", "k", n_partitions=4,
                               engine="functional")

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    cycle_result = lower_hash_join(left, right, "k", "k", n_partitions=4,
                                   engine="cycle")
    assert sorted(result.table.rows) == sorted(cycle_result.table.rows)
    # The functional engine collapses timing: far fewer steps.
    assert result.total_cycles < cycle_result.total_cycles
