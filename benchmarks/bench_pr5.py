"""PR 5 perf trajectory: burst execution vs the PR 2 event scheduler.

Runs the ``bench_pr2`` case set under the event scheduler with the burst
fast path on and off, verifies the resulting ``SimStats`` are
bit-identical, and gates against the committed ``BENCH_PR2.json``
baseline: any case whose burst-on wall-clock regresses more than
``TOLERANCE`` past its recorded PR 2 event-scheduler time fails the run.
Results — including per-tile-class burst-window counts and the burst-off
times that isolate the hot-path micro-audit from the windowed fast path —
are written to ``BENCH_PR5.json``.

Wall-clock baselines are machine-dependent; on shared CI runners the
absolute comparison is noisy, which is why the tolerance is a generous
25% and why the burst-on-vs-off ratio (same process, same machine) is
recorded alongside it.

Usage: ``PYTHONPATH=src python benchmarks/bench_pr5.py [--out PATH]``
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.dataflow import Engine

sys.path.insert(0, str(Path(__file__).resolve().parent))
import bench_pr2  # noqa: E402  (sibling benchmark module)

REPEATS = 3

#: Allowed wall-clock regression vs the committed PR 2 event baseline.
TOLERANCE = 0.25

#: ISSUE 5 wall-clock targets vs the PR 2 event scheduler (advisory in
#: this gate; the JSON records whether each was met on this machine).
TARGETS = {"probe_saturated_2048t": 3.0, "gather_throttled": 3.0}

#: Burst-on must not lose to burst-off (same process, same machine, so
#: the ratio is noise-tolerant).  probe_sparse_32t pins the ISSUE 7 fix:
#: group-burst probing is statically disabled for graphs whose sources
#: cannot sustain a committable window, so the probing overhead that
#: once cost this case ~15% is gone.  Hard assertion — a failure here is
#: a real regression, not runner noise.
MIN_BURST_RATIO = {"probe_sparse_32t": 0.9}


def _time_engine(factory, burst):
    best = float("inf")
    stats = None
    windows = {}
    for __ in range(REPEATS):
        graph = factory()           # fresh graph per run: no shared state
        engine = Engine(graph, scheduler="event", burst=burst)
        t0 = time.perf_counter()
        stats = engine.run()
        best = min(best, time.perf_counter() - t0)
        windows = engine.burst_windows
    return best, stats, windows


def run_benchmarks(baseline_cases):
    results = {}
    regressions = []
    for name, factory in bench_pr2.CASES:
        wall_off, stats_off, __ = _time_engine(factory, burst=False)
        wall_on, stats_on, windows = _time_engine(factory, burst=True)
        if stats_on != stats_off:
            raise AssertionError(
                f"{name}: burst execution diverged from per-cycle event "
                f"scheduling (cycles {stats_on.cycles} vs "
                f"{stats_off.cycles})")
        base = baseline_cases.get(name, {}).get("wall_s_event")
        entry = {
            "simulated_cycles": stats_on.cycles,
            "wall_s_event_noburst": round(wall_off, 6),
            "wall_s_event_burst": round(wall_on, 6),
            "burst_vs_noburst": round(wall_off / wall_on, 2),
            "burst_windows": {
                cls: {"n": len(sizes), "cycles": sum(sizes)}
                for cls, sizes in sorted(windows.items())},
        }
        if base is not None:
            entry["wall_s_event_pr2_baseline"] = base
            entry["speedup_vs_pr2_baseline"] = round(base / wall_on, 2)
            entry["regressed"] = wall_on > base * (1.0 + TOLERANCE)
            if entry["regressed"]:
                regressions.append(name)
        if name in TARGETS and base is not None:
            entry["target_speedup"] = TARGETS[name]
            entry["target_met"] = base / wall_on >= TARGETS[name]
        floor = MIN_BURST_RATIO.get(name)
        if floor is not None:
            entry["min_burst_vs_noburst"] = floor
            if wall_off / wall_on < floor:
                regressions.append(
                    f"{name} (burst_vs_noburst {wall_off / wall_on:.2f} "
                    f"< {floor})")
        results[name] = entry
        windows_str = " ".join(
            f"{cls}:{len(sizes)}w/{sum(sizes)}c"
            for cls, sizes in sorted(windows.items())) or "-"
        print(f"{name:24s} cycles={stats_on.cycles:>7} "
              f"noburst={wall_off * 1e3:8.1f}ms "
              f"burst={wall_on * 1e3:8.1f}ms "
              f"vs_pr2={'' if base is None else f'{base / wall_on:5.2f}x'} "
              f"windows={windows_str}")
    return results, regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    root = Path(__file__).resolve().parent.parent
    parser.add_argument("--out", default=str(root / "BENCH_PR5.json"),
                        help="where to write the JSON record")
    parser.add_argument("--baseline", default=str(root / "BENCH_PR2.json"),
                        help="committed PR 2 baseline to gate against")
    args = parser.parse_args(argv)
    baseline = json.loads(Path(args.baseline).read_text())
    results, regressions = run_benchmarks(baseline["cases"])
    payload = {
        "benchmark": "burst execution vs PR 2 event scheduler (PR 5)",
        "repeats_best_of": REPEATS,
        "tolerance": TOLERANCE,
        "baseline": Path(args.baseline).name,
        "cases": results,
        "regressions": regressions,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    targets_met = [n for n in TARGETS if results[n].get("target_met")]
    print(f"\nwrote {args.out} ({len(targets_met)}/{len(TARGETS)} "
          f"speedup targets met, {len(regressions)} regressions)")
    if regressions:
        print(f"FAIL: wall-clock regressed >{TOLERANCE:.0%} vs "
              f"{payload['baseline']} on: {', '.join(regressions)}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
