"""Shared helpers for the figure/table reproduction benchmarks.

Every bench regenerates one of the paper's tables or figures and both
prints it and writes it under ``benchmarks/results/`` so the output
survives pytest's capture.  EXPERIMENTS.md records the paper-vs-measured
comparison for each.
"""

from __future__ import annotations

import os
from typing import List

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(name: str, lines: List[str]) -> str:
    """Print a figure's rows and persist them to results/<name>.txt."""
    text = "\n".join(lines)
    print(f"\n=== {name} ===\n{text}")
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as f:
        f.write(text + "\n")
    return text


def fmt_time(seconds: float) -> str:
    """Engineering-format a runtime."""
    if seconds >= 1.0:
        return f"{seconds:.3g} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3g} ms"
    if seconds >= 1e-6:
        return f"{seconds * 1e6:.3g} us"
    return f"{seconds * 1e9:.3g} ns"
