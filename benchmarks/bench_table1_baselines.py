"""Table 1 — evaluation platform inventory."""

from repro.baselines import table1_rows
from repro.perf.params import AUROCHS, CPU, GPU

from figutil import emit


def test_table1_platforms(benchmark):
    rows = benchmark(table1_rows)
    lines = []
    for platform, desc in rows:
        lines.append(platform)
        lines.append(f"    {desc}")
    emit("table1_baselines", lines)
    assert len(rows) == 3
    # Sanity: the GPU has ~1 TB/s DRAM but limited 16 GiB capacity (§V-B).
    assert GPU.dram_bw_bytes > 0.5e12
    assert GPU.mem_bytes == 16 * 1024 ** 3
    # Aurochs: 20x20 grid at 1 GHz (§II-B).
    assert AUROCHS.grid == 20 and AUROCHS.clock_hz == 1e9
    assert CPU.cores >= 32
