"""Live-ingestion benchmark gate: query flights under concurrent writes.

Runs the 200-request ingest-concurrent chaos configuration — taxi query
flights mixed into the standard catalog while seeded append batches flow
into the live dataset, with deterministically flaky replicas, one
permanent replica kill, and one seeded mid-compaction-window kill — and
records snapshot/maintenance/starvation statistics in
``BENCH_INGEST.json``.

Hard requirements, enforced as exit status:

* **zero wrong results** — every ``ok`` serve's digest equals the golden
  of the *version the request pinned*, and every serving invariant holds;
* **no torn versions** — every published version's content equals the
  serial replay of its append-log prefix, even with kills landing
  mid-maintenance;
* **starvation bounded** — the memtable high-water mark never exceeds
  ``memtable_limit_factor × batch_size`` rows;
* **bit-reproducible** — the run is executed twice and the outcome
  signature sequences must be identical.

Usage: ``PYTHONPATH=src python benchmarks/bench_ingest.py [--out PATH]``
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

from repro.serving import (
    LoadTestConfig,
    TAXI_NAMES,
    check_invariants,
    run_loadtest,
    signature,
)

REQUESTS = 200
SEED = 0
KILLS = 1
COMPACTION_KILLS = 1


def _p50(cycles) -> int:
    values = sorted(cycles)
    return int(statistics.median(values)) if values else 0


def outcome_counts(runtime) -> dict:
    counts: dict = {}
    for o in runtime.outcomes:
        counts[o.status] = counts.get(o.status, 0) + 1
    return counts


def check_run(label: str, runtime, failures: list) -> None:
    for violation in check_invariants(runtime):
        failures.append(f"{label}: {violation}")
    wrong = sum(1 for o in runtime.outcomes if o.status == "wrong_result")
    if wrong:
        failures.append(f"{label}: {wrong} wrong result(s)")
    dataset = runtime.ingest.dataset
    for version, __kind, n_rows in dataset.version_log:
        if dataset.content_digest(version) != dataset.prefix_digest(n_rows):
            failures.append(
                f"{label}: version {version} is torn — content differs "
                f"from the serial replay of its {n_rows}-row prefix")
    starvation = runtime.ingest.report()["starvation"]
    if not starvation["within_bound"]:
        failures.append(
            f"{label}: memtable high-water mark "
            f"{starvation['max_memtable']} exceeds the "
            f"{starvation['memtable_bound']}-row bound "
            f"(compaction starvation unbounded)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_INGEST.json",
                        help="output JSON path")
    args = parser.parse_args(argv)

    config = LoadTestConfig(
        requests=REQUESTS, seed=SEED, faults=True, ingest=True,
        kills=KILLS, compaction_kills=COMPACTION_KILLS)

    failures: list = []
    t0 = time.perf_counter()

    runtime = run_loadtest(config)
    rerun = run_loadtest(config)

    check_run("run", runtime, failures)
    check_run("rerun", rerun, failures)
    if signature(runtime) != signature(rerun):
        failures.append("re-running the identical config produced a "
                        "different outcome signature (determinism broken)")

    report = runtime.report()["ingest"]
    dataset, maintenance = report["dataset"], report["maintenance"]
    starvation = report["starvation"]
    taxi = [o for o in runtime.outcomes if o.request.query in TAXI_NAMES]
    versions_pinned = sorted({o.request.snapshot for o in taxi
                              if o.request.snapshot is not None})
    taxi_p50 = _p50(o.cycles for o in taxi if o.ok)

    print(f"{REQUESTS} requests + live ingestion (seed {SEED}, faults on, "
          f"kills={KILLS}+{COMPACTION_KILLS} mid-compaction):")
    print(f"  ingest: {dataset['rows_ingested']} rows -> "
          f"{maintenance['flushes']} flushes {maintenance['compactions']} "
          f"compactions ({dataset['versions_published']} versions, "
          f"wamp={dataset['write_amplification']})")
    print(f"  flights: {len(taxi)} taxi requests pinned "
          f"{len(versions_pinned)} distinct versions, ok-p50={taxi_p50}")
    print(f"  starvation: max_memtable={starvation['max_memtable']}"
          f"/{starvation['memtable_bound']} "
          f"escalations={report['escalations']} "
          f"abandoned={maintenance['compactions_abandoned']} "
          f"requeued={maintenance['flushes_requeued']}")

    result = {
        "config": {
            "requests": REQUESTS, "seed": SEED, "kills": KILLS,
            "compaction_kills": COMPACTION_KILLS,
            "ingest_rate": config.ingest_rate,
            "ingest_batch_rows": list(config.ingest_batch_rows),
        },
        "outcomes": outcome_counts(runtime),
        "taxi": {"requests": len(taxi),
                 "versions_pinned": versions_pinned,
                 "ok_p50_cycles": taxi_p50},
        "ingest_report": report,
        "reproducible": signature(runtime) == signature(rerun),
        "wall_s": round(time.perf_counter() - t0, 3),
        "failures": failures,
        "ok": not failures,
    }
    Path(args.out).write_text(json.dumps(result, indent=1, default=str))
    print(f"wrote {args.out}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("ingest bench: zero wrong results across pinned versions, no "
          "torn publications, starvation bounded, bit-reproducible")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
