"""§IV-A ablation — symmetric stream joins emit matches with low latency.

"Aurochs' lock-free implementation ... is critical for low-latency
stream joins where two streams build hash tables with the other's records
that they simultaneously probe with their own."  The benefit over a batch
hash join is *latency*: the symmetric join surfaces each match the moment
its second record arrives, while a batch join emits nothing until the
build side has fully materialized.

Metric: per-match emission latency in arrival steps — (arrival index of
the emission opportunity) vs (arrival index where a batch join could
first emit, i.e. the end of the build phase).
"""

import random

import pytest

from repro.db import Table
from repro.db.operators import hash_join, symmetric_hash_join

from figutil import emit

N = 3000


def _streams(seed=180):
    rng = random.Random(seed)
    left = Table.from_columns(
        "l", k=[rng.randrange(400) for __ in range(N)],
        seq=list(range(N)))
    right = Table.from_columns(
        "r", k=[rng.randrange(400) for __ in range(N)],
        seq=list(range(N)))
    return left, right


def _latencies():
    left, right = _streams()
    sym = symmetric_hash_join(left, right, "k", "k")
    # A match's earliest possible emission is when its LATER record
    # arrives; the symmetric join achieves exactly that, so its latency
    # is 0 by construction — measure the batch join's instead: every
    # match waits until the entire build side (N arrivals) has landed.
    sym_latencies = []
    li = sym.schema.index("seq")
    ri = sym.schema.index("r_seq")
    for row in sym.rows:
        ready_at = max(row[li], row[ri])
        sym_latencies.append(0)          # emitted at `ready_at` itself
    batch = hash_join(left, right, "k", "k")
    batch_latencies = []
    bi = batch.schema.index("seq")
    bri = batch.schema.index("r_seq")
    for row in batch.rows:
        ready_at = max(row[bi], row[bri])
        batch_latencies.append(N - ready_at)  # waits for full build side
    return sym, batch, sym_latencies, batch_latencies


def test_stream_join_latency(benchmark):
    sym, batch, sym_lat, batch_lat = benchmark.pedantic(
        _latencies, rounds=1, iterations=1)
    assert sorted(sym.rows) == sorted(batch.rows)
    mean_batch = sum(batch_lat) / len(batch_lat)
    emit("stream_join_latency", [
        f"{len(sym)} matches over two {N}-event streams",
        "symmetric join: every match emitted at its second record's "
        "arrival (latency 0 steps)",
        f"batch hash join: mean emission latency {mean_batch:.0f} arrival "
        f"steps (max {max(batch_lat)})",
    ])
    assert max(sym_lat) == 0
    assert mean_batch > N / 10


def test_symmetric_join_work_is_linear(benchmark):
    # Each arrival does one insert + one probe: RMW count == arrivals.
    from repro.db import ExecutionContext
    left, right = _streams(seed=181)

    def run():
        ctx = ExecutionContext()
        symmetric_hash_join(left, right, "k", "k", ctx)
        return ctx

    ctx = benchmark.pedantic(run, rounds=1, iterations=1)
    assert ctx.traces[-1].events.rmw_ops == 2 * N
