"""Fig. 11a — equi-join runtime vs table size, all platforms.

Paper claims to reproduce (shape, not absolute numbers):
* Gorgon's sort-merge join beats the hash join at small sizes (dense
  access), loses at large sizes (O(n log n) vs O(n));
* Aurochs matches software asymptotics but wins on constant factors at
  every size: the GPU joins 100M-row tables of 8-byte tuples at ~4.5 GB/s,
  the CPU is an order of magnitude slower than that, and Aurochs joins at
  >50 GB/s when parallelized.
"""

import pytest

from repro.baselines import GorgonModel
from repro.perf import CostModel, kernels
from repro.perf.params import CPU, GPU

from figutil import emit, fmt_time

SIZES = [10 ** 4, 10 ** 5, 10 ** 6, 10 ** 7, 10 ** 8]
STREAMS = 16


def _aurochs_seconds(n):
    model = CostModel(parallel_streams=STREAMS)
    return model.runtime_seconds(kernels.hash_join_events(n, n))


def _gorgon_seconds(n):
    return GorgonModel(parallel_streams=STREAMS).join_seconds(n, n)


def _cpu_seconds(n):
    import math
    rows = 2 * n
    t_hash = rows / (CPU.cores * CPU.hash_join_rows_per_s)
    t_bw = rows * 8 / CPU.dram_bw_bytes
    return max(t_hash, t_bw)


def _gpu_seconds(n):
    return 2 * n * 8 / GPU.join_bytes_per_s


def _figure_rows():
    rows = [f"{'rows/table':>12} {'Aurochs':>12} {'Gorgon(sort)':>12} "
            f"{'CPU':>12} {'GPU':>12}"]
    for n in SIZES:
        rows.append(
            f"{n:>12} {fmt_time(_aurochs_seconds(n)):>12} "
            f"{fmt_time(_gorgon_seconds(n)):>12} "
            f"{fmt_time(_cpu_seconds(n)):>12} "
            f"{fmt_time(_gpu_seconds(n)):>12}")
    return rows


def test_fig11a_join_scaling(benchmark):
    rows = benchmark(_figure_rows)
    emit("fig11a_join_scaling", rows)
    # Shape assertions from the paper's text.
    assert _gorgon_seconds(SIZES[0]) < _aurochs_seconds(SIZES[0])
    assert _aurochs_seconds(SIZES[-1]) < _gorgon_seconds(SIZES[-1])
    for n in SIZES:
        assert _aurochs_seconds(n) < _cpu_seconds(n)
        assert _aurochs_seconds(n) < _gpu_seconds(n)


def test_fig11a_aurochs_join_rate_exceeds_50gbs(benchmark):
    # §V-B: "When parallelized, Aurochs can join tables at over 50 GB/s."
    n = 10 ** 8
    rate = benchmark(lambda: 2 * n * 8 / _aurochs_seconds(n))
    assert rate > 50e9, f"Aurochs joins at only {rate / 1e9:.1f} GB/s"


def test_fig11a_gpu_vs_cpu_order_of_magnitude(benchmark):
    # §V-B: the GPU "outperform[s] the CPU by over an order of magnitude".
    n = 10 ** 8
    ratio = benchmark(lambda: _cpu_seconds(n) / _gpu_seconds(n))
    assert ratio > 10
