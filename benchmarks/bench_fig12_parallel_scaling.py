"""Fig. 12 — kernel throughput vs stream-level parallelization.

Paper claims to reproduce (shape): kernel throughput scales with the
parallelization knob until kernels become memory-bound; observed
throughput stays below raw DRAM bandwidth because of super-linear
algorithms or sparse access patterns.  The placer bounds how far the knob
can turn on the 20x20 fabric.
"""

from repro.db.planner import Placer, PlanNode
from repro.perf import AUROCHS, CostModel, kernels

from figutil import emit

N = 10 ** 7
ROW_BYTES = 8
STREAMS = [1, 2, 4, 8, 16, 32]

KERNELS = {
    "hash_join": (kernels.hash_join_events(N, N), 2 * N * ROW_BYTES),
    "hash_build": (kernels.hash_build_events(N), N * ROW_BYTES),
    "hash_probe": (kernels.hash_probe_events(N), N * ROW_BYTES),
    "partition": (kernels.partition_events(N), N * ROW_BYTES),
    "sort_merge_join": (kernels.sort_merge_join_events(N, N),
                        2 * N * ROW_BYTES),
}


def _throughputs(name):
    ev, nbytes = KERNELS[name]
    return [CostModel(parallel_streams=p).throughput_bytes_per_s(ev, nbytes)
            for p in STREAMS]


def _figure_rows():
    rows = [f"{'kernel':>16} " + " ".join(f"p={p:>2}(GB/s)" for p in STREAMS)]
    for name in KERNELS:
        tps = _throughputs(name)
        rows.append(f"{name:>16} " + " ".join(f"{tp / 1e9:>10.2f}"
                                              for tp in tps))
    rows.append(f"DRAM bandwidth: {AUROCHS.dram_bw_bytes / 1e9:.0f} GB/s")
    return rows


def test_fig12_parallel_scaling(benchmark):
    rows = benchmark(_figure_rows)
    emit("fig12_parallel_scaling", rows)
    dram_heavy = ("hash_join", "partition", "sort_merge_join")
    for name in KERNELS:
        tps = _throughputs(name)
        # Scales at low parallelism (partition is memory-bound almost
        # immediately, so exempt it from the scaling check)...
        if name != "partition":
            assert tps[1] > 1.5 * tps[0], name
        # ...and observed throughput stays below raw DRAM bandwidth
        # ("far below" for the sparse / super-linear kernels).
        assert tps[-1] < AUROCHS.dram_bw_bytes, name
    for name in dram_heavy:
        # DRAM-phase kernels saturate once memory-bound.
        tps = _throughputs(name)
        assert tps[-1] < 1.2 * tps[-2], name


def test_fig12_placer_bounds_the_knob(benchmark):
    # The parallelization knob costs tiles; the fabric budget caps it.
    plan = PlanNode("hash_join", 1)
    max_p = benchmark(lambda: Placer().max_parallel(plan))
    assert 16 <= max_p < 64
