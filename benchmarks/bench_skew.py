"""§IV-A ablation — radix partitioning on the hash neutralizes key skew.

Paper claim: "Radix partitioning on the hash load-balances parallel
hashing pipelines regardless of skew because hash functions naturally
generate uniform distributions."  This bench partitions skewed key
streams two ways — on raw key bits and on the key's hash — and reports
the load balance (max/mean partition size).  A slow partition gates the
whole parallel pipeline array, so balance is throughput.

Patterns: *strided* ids (all multiples of the partition count — the raw
low bits are constant), *clustered* values (timestamps around hotspot
events), and *Zipf duplicates*.  The last is included as an honest
caveat: hashing spreads skewed key *patterns*, but a single massively
duplicated key value necessarily lands in one partition under any
key-deterministic split — only value-level multiplicity, not bit
patterns, survives the hash.
"""

from repro.workloads.skew import (
    balance,
    clustered_keys,
    partition_sizes_on_hash,
    partition_sizes_on_raw_bits,
    strided_keys,
    zipf_keys,
)

from figutil import emit

N = 64_000
PARTITIONS = 16

PATTERNS = {
    "sequential": lambda: strided_keys(N, stride=1),
    "strided x16": lambda: strided_keys(N, stride=PARTITIONS),
    "clustered": lambda: clustered_keys(
        N, centers=[1 << 12, 1 << 18, 1 << 24], spread=500),
    "zipf dup s=1.5": lambda: zipf_keys(N, key_space=1 << 16, s=1.5),
}


def _sweep():
    rows = [f"{'pattern':>16} {'raw-bit balance':>16} {'hash balance':>13}"]
    results = {}
    for label, gen in PATTERNS.items():
        keys = gen()
        raw = balance(partition_sizes_on_raw_bits(keys, PARTITIONS))
        hashed = balance(partition_sizes_on_hash(keys, PARTITIONS))
        results[label] = (raw, hashed)
        rows.append(f"{label:>16} {raw:>16.2f} {hashed:>13.2f}")
    return rows, results


def test_hash_partitioning_neutralizes_pattern_skew(benchmark):
    rows, results = benchmark(_sweep)
    emit("skew_ablation", rows)
    for label in ("sequential", "strided x16", "clustered"):
        raw, hashed = results[label]
        # Hash partitioning stays near-balanced on every key pattern...
        assert hashed < 1.2, f"hash partitioning unbalanced on {label}"
    # ...while raw-bit partitioning collapses on the strided pattern
    # (every key in one partition -> balance == PARTITIONS).
    raw_strided, hash_strided = results["strided x16"]
    assert raw_strided == PARTITIONS
    assert hash_strided < 1.2


def test_duplicate_value_skew_is_not_hashable(benchmark):
    # The documented caveat: duplicated VALUES concentrate regardless.
    def measure():
        keys = zipf_keys(N, key_space=1 << 16, s=1.5, seed=3)
        return balance(partition_sizes_on_hash(keys, PARTITIONS))
    b = benchmark(measure)
    assert b > 1.5
