"""Table 2 — benchmark query descriptions and input table sizes.

Regenerates the workload inventory: each query's description, the fact
tables and stream tables it touches, and the generated row counts at the
paper-scale configuration.
"""

from repro.workloads import QUERIES, RideshareConfig, generate

from figutil import emit


def _table2_lines():
    cfg = RideshareConfig.paper_scale()
    lines = [f"paper-scale generator config: rides={cfg.n_rides:,} "
             f"riders={cfg.n_riders:,} drivers={cfg.n_drivers:,} "
             f"locations={cfg.n_locations:,} "
             f"rideReq={cfg.n_ride_reqs:,} driverStatus={cfg.n_driver_status:,}"]
    lines.append(f"{'query':>6}  {'tables':<28} {'streams':<26} description")
    for name, qd in QUERIES.items():
        lines.append(f"{name:>6}  {','.join(qd.tables) or '-':<28} "
                     f"{','.join(qd.streams) or '-':<26} {qd.description}")
    return lines


def test_table2_workload(benchmark):
    lines = benchmark(_table2_lines)
    emit("table2_workload", lines)
    assert len(QUERIES) == 9


def test_table2_generator_produces_sizes(benchmark):
    # Generate at 1/100 paper scale and verify proportions.
    cfg = RideshareConfig.paper_scale().scaled(0.01)
    data = benchmark(lambda: generate(cfg))
    sizes = data.sizes()
    assert sizes["ride"] == 10_000
    assert sizes["rider"] == 1_000
    assert sizes["rideReq"] == 1_000
