"""Fig. 10 — area overhead of the sparse reordering pipeline.

Paper: the additions increase scratchpad area by 15% (5% of total chip
area); the allocator is only a small portion, with issue-queue request
storage dominating.
"""

from repro.perf import area_breakdown, chip_overhead_pct, scratchpad_overhead_pct

from figutil import emit


def _figure_lines():
    lines = ["component                        % of baseline scratchpad area"]
    for name, __, pct in area_breakdown():
        bar = "#" * int(round(pct * 4))
        lines.append(f"{name:<32} {pct:5.2f}  {bar}")
    lines.append(f"{'TOTAL (scratchpad)':<32} {scratchpad_overhead_pct():5.2f}")
    lines.append(f"{'TOTAL (chip)':<32} {chip_overhead_pct():5.2f}")
    return lines


def test_fig10_area_breakdown(benchmark):
    lines = benchmark(_figure_lines)
    emit("fig10_area", lines)
    assert abs(scratchpad_overhead_pct() - 15.0) < 0.01
    assert abs(chip_overhead_pct() - 5.0) < 0.01
