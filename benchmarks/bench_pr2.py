"""PR 2 perf trajectory: event-driven vs exhaustive scheduler wall-clock.

Runs a fixed set of cycle-level microbenchmarks under both engine
schedulers, verifies the resulting ``SimStats`` are bit-identical, and
records wall-clock plus simulated cycles per case in ``BENCH_PR2.json``.

Cases span the three regimes that matter:

* ``dram_chase_*`` — dependent pointer-chases through DRAM, the
  latency-bound regime of §III-A: most cycles, nothing is ready, and the
  event engine fast-forwards across the round trips;
* ``probe_sparse`` / ``probe_chain_hot`` — divergence-heavy hash probes
  with few live threads: most tiles idle most cycles;
* ``probe_saturated`` / ``gather_throttled`` — line-rate pipelines where
  nearly every tile moves every cycle.  These bound the event engine's
  bookkeeping overhead and are expected to show little or no speedup;
  they are recorded to keep the trajectory honest.

Usage: ``PYTHONPATH=src python benchmarks/bench_pr2.py [--out PATH]``
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

from repro.dataflow import (
    Engine,
    FilterTile,
    Graph,
    MergeTile,
    SinkTile,
    SourceTile,
)
from repro.memory import DramMemory
from repro.memory.dram import DramTile
from repro.memory.spad_tile import PortConfig
from repro.structures import HashTableDataflow

REPEATS = 3


def _probe_graph(n_threads, chain_hot=False, seed=80):
    rng = random.Random(seed)
    n = 1024
    ht = HashTableDataflow(n_buckets=n, spad_node_capacity=4 * n)
    if chain_hot:
        ht.load([(7, i) for i in range(64)])       # one long chain
    else:
        ht.load([(rng.randrange(1 << 20), i) for i in range(n)])
    queries = [(q, rng.randrange(1 << 20)) for q in range(n_threads)]
    return ht.probe_graph(queries, emit_all=False)


def _dram_chase_graph(n_threads, hops, n=4096):
    """Each thread follows ``hops`` dependent pointers through DRAM."""
    g = Graph("chase")
    mem = DramMemory("dram", capacity_words=2 * n)
    nxt = mem.region("next", n, 1, fill=0)
    for i in range(n):
        nxt[i] = (i * 173 + 13) % n
    src = g.add(SourceTile("src", [((i * 97) % n, 0)
                                   for i in range(n_threads)]))
    merge = g.add(MergeTile("merge"))
    dram = g.add(DramTile("hop", mem, [PortConfig(
        mode="read", region=nxt, addr=lambda r: r[0],
        combine=lambda r, v: (v, r[1] + 1))]))
    cond = g.add(FilterTile("cond", lambda r: r[1] >= hops))
    sink = g.add(SinkTile("sink"))
    g.connect(src, merge)
    g.connect(merge, dram)
    g.connect(dram, cond)
    g.connect(cond, sink, producer_port=0)
    g.connect(cond, merge, producer_port=1, priority=True)
    return g


def _gather_graph(rate, n_requests=512, n=4096):
    g = Graph("gather")
    mem = DramMemory("dram", capacity_words=2 * n)
    data = mem.region("data", n, 1, fill=0)
    src = g.add(SourceTile("src", [((i * 37) % n,)
                                   for i in range(n_requests)], rate=rate))
    dram = g.add(DramTile("dram_t", mem, [PortConfig(
        mode="read", region=data, addr=lambda r: r[0],
        combine=lambda r, v: (r[0], v))]))
    sink = g.add(SinkTile("sink"))
    g.connect(src, dram)
    g.connect(dram, sink)
    return g


CASES = [
    ("dram_chase_8t_16hop", lambda: _dram_chase_graph(8, 16)),
    ("dram_chase_2t_32hop", lambda: _dram_chase_graph(2, 32)),
    ("probe_sparse_32t", lambda: _probe_graph(32)),
    ("probe_chain_hot_64t", lambda: _probe_graph(64, chain_hot=True)),
    ("probe_saturated_2048t", lambda: _probe_graph(2048)),
    ("gather_throttled", lambda: _gather_graph(rate=1)),
]


def _time_scheduler(factory, scheduler):
    best = float("inf")
    stats = None
    for __ in range(REPEATS):
        graph = factory()           # fresh graph per run: no shared state
        t0 = time.perf_counter()
        stats = Engine(graph, scheduler=scheduler).run()
        best = min(best, time.perf_counter() - t0)
    return best, stats


def run_benchmarks():
    results = {}
    for name, factory in CASES:
        wall_ex, stats_ex = _time_scheduler(factory, "exhaustive")
        wall_ev, stats_ev = _time_scheduler(factory, "event")
        if stats_ev != stats_ex:
            raise AssertionError(
                f"{name}: event scheduler diverged from exhaustive "
                f"(cycles {stats_ev.cycles} vs {stats_ex.cycles})")
        results[name] = {
            "simulated_cycles": stats_ex.cycles,
            "wall_s_exhaustive": round(wall_ex, 6),
            "wall_s_event": round(wall_ev, 6),
            "speedup": round(wall_ex / wall_ev, 2),
        }
        print(f"{name:24s} cycles={stats_ex.cycles:>7} "
              f"exhaustive={wall_ex * 1e3:8.1f}ms "
              f"event={wall_ev * 1e3:8.1f}ms "
              f"speedup={wall_ex / wall_ev:5.2f}x")
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    default_out = Path(__file__).resolve().parent.parent / "BENCH_PR2.json"
    parser.add_argument("--out", default=str(default_out),
                        help="where to write the JSON record")
    args = parser.parse_args(argv)
    results = run_benchmarks()
    at_least_2x = [n for n, r in results.items() if r["speedup"] >= 2.0]
    payload = {
        "benchmark": "event-driven scheduler vs exhaustive (PR 2)",
        "repeats_best_of": REPEATS,
        "cases": results,
        "cases_at_or_above_2x": at_least_2x,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.out} "
          f"({len(at_least_2x)}/{len(results)} cases at >=2x)")
    if len(at_least_2x) < 2:
        print("FAIL: expected >=2x wall-clock speedup on at least "
              "two cases", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
