"""Fig. 14 + runtime/energy table — Q1-Q9 on Aurochs, CPU, and GPU.

Paper claims to reproduce (shape): Aurochs outperforms the GPU on all
queries by up to ~12x and on average ~8x, outperforms the CPU by ~160x
on average, and is ~20x more energy-efficient than the GPU (energy =
runtime x design power).

Queries execute functionally at a benchmark-scale dataset (a 1/10-scale
Table 2 — cycle/functional simulation bounds table sizes exactly as the
paper's simulator did); each platform prices the identical operator trace.
"""

import statistics

import pytest

from repro.baselines import CpuModel, GpuModel
from repro.db import ExecutionContext
from repro.perf import CostModel
from repro.perf.energy import energy_joules, platform_power
from repro.workloads import QUERIES, RideshareConfig, generate, run_query

from figutil import emit, fmt_time

_DATA = None
_TRACES = None


def _data():
    global _DATA
    if _DATA is None:
        cfg = RideshareConfig(
            n_drivers=2_000, n_riders=10_000, n_locations=256,
            n_rides=100_000, n_ride_reqs=10_000, n_driver_status=10_000)
        _DATA = generate(cfg)
    return _DATA


def _traces():
    global _TRACES
    if _TRACES is None:
        _TRACES = {}
        for name in QUERIES:
            ctx = ExecutionContext()
            run_query(name, _data(), ctx)
            _TRACES[name] = ctx
    return _TRACES


def _runtimes():
    aurochs = CostModel(parallel_streams=16)
    cpu, gpu = CpuModel(), GpuModel()
    out = {}
    for name, ctx in _traces().items():
        out[name] = (aurochs.query_runtime(ctx), cpu.query_runtime(ctx),
                     gpu.query_runtime(ctx))
    return out


def _figure_rows():
    rows = [f"{'query':>6} {'Aurochs':>11} {'CPU':>11} {'GPU':>11} "
            f"{'vsCPU':>8} {'vsGPU':>8} {'E_aur(mJ)':>10} {'E_gpu(mJ)':>10}"]
    speed_cpu, speed_gpu = [], []
    for name, (ta, tc, tg) in _runtimes().items():
        speed_cpu.append(tc / ta)
        speed_gpu.append(tg / ta)
        ea = energy_joules(ta, platform_power("aurochs")) * 1e3
        eg = energy_joules(tg, platform_power("gpu")) * 1e3
        rows.append(f"{name:>6} {fmt_time(ta):>11} {fmt_time(tc):>11} "
                    f"{fmt_time(tg):>11} {tc / ta:>7.0f}x {tg / ta:>7.1f}x "
                    f"{ea:>10.4f} {eg:>10.4f}")
    rows.append(
        f"geomean speedup: vs CPU {statistics.geometric_mean(speed_cpu):.0f}x "
        f"(paper ~160x), vs GPU {statistics.geometric_mean(speed_gpu):.1f}x "
        f"(paper ~8x, max ~12x)")
    return rows


def test_fig14_query_comparison(benchmark):
    rows = benchmark(_figure_rows)
    emit("fig14_queries", rows)
    runtimes = _runtimes()
    speed_cpu = [tc / ta for ta, tc, __ in runtimes.values()]
    speed_gpu = [tg / ta for ta, __, tg in runtimes.values()]
    # Aurochs wins every query against both baselines.
    assert all(s > 1 for s in speed_cpu)
    assert all(s > 1 for s in speed_gpu)
    # Order-of-magnitude bands around the paper's averages.
    assert 30 < statistics.geometric_mean(speed_cpu) < 1000
    assert 2 < statistics.geometric_mean(speed_gpu) < 100


def test_fig14_energy_efficiency(benchmark):
    def ratio():
        total_a = total_g = 0.0
        for ta, __, tg in _runtimes().values():
            total_a += energy_joules(ta, platform_power("aurochs"))
            total_g += energy_joules(tg, platform_power("gpu"))
        return total_g / total_a
    r = benchmark(ratio)
    # Paper: ~20x more energy-efficient than the GPU.
    assert r > 5, f"energy advantage only {r:.1f}x"


def test_fig14_cpu_energy_worse_than_aurochs(benchmark):
    def ratio():
        total_a = total_c = 0.0
        for ta, tc, __ in _runtimes().values():
            total_a += energy_joules(ta, platform_power("aurochs"))
            total_c += energy_joules(tc, platform_power("cpu"))
        return total_c / total_a
    r = benchmark(ratio)
    assert r > 50
