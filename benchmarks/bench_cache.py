"""Partition-cache benchmark: warmed Zipf traffic vs the uncached path.

Runs a Zipf(1.1)-skewed stream of predicated joins through the serving
runtime twice: once with the semantic partition cache enabled (after a
deterministic warmup phase that touches the whole predicated catalog for
every tenant), and once through the plain K=4 sharded scatter/gather
path with no cache.  Records hit rates, latency percentiles, and the
makespan comparison in ``BENCH_CACHE.json``.

Hard requirements, enforced as exit status:

* both runs hold every serving invariant — zero wrong results, every
  ``ok`` serve golden-digest equal to the fault-free unsharded run;
* the warmed measurement phase reaches a combined (hit + partial-hit)
  rate of at least ``HIT_RATE_FLOOR`` (0.60);
* the warmed cached p50 latency strictly beats the uncached sharded
  p50 on the identical request stream;
* the sharded-join makespans from ``bench_shard`` have not regressed
  more than ``REGRESSION_TOLERANCE`` vs the committed
  ``BENCH_SHARD.json`` (the cache tier must not tax the plain path).

Usage: ``PYTHONPATH=src python benchmarks/bench_cache.py [--out PATH]``
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from dataclasses import replace
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import bench_shard  # noqa: E402  (sibling module, not a package)

from repro.serving import (  # noqa: E402
    LoadTestConfig,
    PJOIN_NAMES,
    Request,
    check_invariants,
    generate_requests,
)
from repro.serving.chaos import TENANTS, build_runtime  # noqa: E402

REQUESTS = 200
SEED = 11
PARTITIONS = 4
ZIPF = 1.1
HIT_RATE_FLOOR = 0.60
REGRESSION_TOLERANCE = 0.05
#: Measurement-stream requests get ids below this; warmup ids above it.
WARMUP_BASE = 1_000_000


def warmup_requests(start_cycle: int) -> list:
    """The deterministic warmup phase: every predicated join once per
    tenant, spaced widely enough that nothing queues."""
    requests = []
    i = 0
    for tenant in TENANTS:
        for name in PJOIN_NAMES:
            requests.append(Request(
                id=WARMUP_BASE + i, tenant=tenant, query=name,
                klass="batch", arrival=start_cycle + i * 20_000))
            i += 1
    return requests


def shifted(stream, offset: int) -> list:
    """The same request stream, re-based ``offset`` cycles later."""
    return [replace(r, arrival=r.arrival + offset,
                    deadline=None if r.deadline is None
                    else r.deadline + offset)
            for r in stream]


def p50(runtime, warmed_only: bool) -> int:
    cycles = sorted(o.cycles for o in runtime.outcomes
                    if o.ok and (not warmed_only
                                 or o.request.id < WARMUP_BASE))
    return int(statistics.median(cycles)) if cycles else 0


def outcome_counts(runtime, warmed_only: bool) -> dict:
    counts: dict = {}
    for o in runtime.outcomes:
        if warmed_only and o.request.id >= WARMUP_BASE:
            continue
        counts[o.status] = counts.get(o.status, 0) + 1
    return counts


def run_cached(config: LoadTestConfig):
    """Warm the cache over the full catalog, then serve the measured
    Zipf stream; returns (runtime, measurement hit stats)."""
    runtime = build_runtime(config)
    for request in warmup_requests(0):
        runtime.submit(request)
    runtime.run()
    warm_end = runtime.clock + 1_000
    before = runtime.partition_cache.report()
    for request in shifted(generate_requests(config), warm_end):
        runtime.submit(request)
    runtime.run()
    after = runtime.partition_cache.report()
    delta = {key: after[key] - before[key]
             for key in ("hits", "partial_hits", "misses")}
    served = sum(delta.values())
    delta["hit_rate"] = ((delta["hits"] + delta["partial_hits"]) / served
                         if served else 0.0)
    return runtime, delta


def run_uncached(config: LoadTestConfig):
    """The identical measured stream through plain K-sharding."""
    runtime = build_runtime(config)
    for request in generate_requests(config):
        runtime.submit(request)
    runtime.run()
    return runtime


def check_shard_regression(failures: list) -> dict:
    """Re-run the sharded-join makespan comparison and diff it against
    the committed ``BENCH_SHARD.json`` baseline."""
    current = bench_shard.makespan_comparison()
    baseline_path = Path(__file__).resolve().parent.parent / (
        "BENCH_SHARD.json")
    if not baseline_path.exists():
        return {"makespan": current, "baseline": None}
    baseline = json.loads(baseline_path.read_text()).get("makespan", {})
    for name, row in current.items():
        want = baseline.get(name)
        if want is None:
            continue
        limit = want["sharded_cycles"] * (1.0 + REGRESSION_TOLERANCE)
        if row["sharded_cycles"] > limit:
            failures.append(
                f"makespan regression: {name} now {row['sharded_cycles']} "
                f"cycles vs committed {want['sharded_cycles']} "
                f"(>{REGRESSION_TOLERANCE:.0%} tolerance)")
    return {"makespan": current,
            "baseline": {k: v["sharded_cycles"] for k, v in
                         baseline.items()}}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_CACHE.json",
                        help="output JSON path")
    args = parser.parse_args(argv)

    cached_cfg = LoadTestConfig(
        requests=REQUESTS, seed=SEED, zipf=ZIPF, cache=True,
        cache_partitions=PARTITIONS)
    uncached_cfg = replace(cached_cfg, cache=False, shards=PARTITIONS)

    failures: list = []
    t0 = time.perf_counter()

    cached, hit_stats = run_cached(cached_cfg)
    uncached = run_uncached(uncached_cfg)

    for label, runtime in (("cached", cached), ("uncached", uncached)):
        for violation in check_invariants(runtime):
            failures.append(f"{label}: {violation}")
        wrong = sum(1 for o in runtime.outcomes
                    if o.status == "wrong_result")
        if wrong:
            failures.append(f"{label}: {wrong} wrong result(s)")

    cached_p50 = p50(cached, warmed_only=True)
    uncached_p50 = p50(uncached, warmed_only=False)
    print(f"warmed Zipf({ZIPF}) stream, {REQUESTS} requests, "
          f"K={PARTITIONS}:")
    print(f"  cache: {hit_stats['hits']} hits "
          f"{hit_stats['partial_hits']} partial {hit_stats['misses']} "
          f"misses (rate={hit_stats['hit_rate']:.2f})")
    print(f"  p50: cached={cached_p50} uncached={uncached_p50} cycles "
          f"({uncached_p50 / max(1, cached_p50):.1f}x)")
    if hit_stats["hit_rate"] < HIT_RATE_FLOOR:
        failures.append(
            f"warmed hit+partial rate {hit_stats['hit_rate']:.2f} below "
            f"the {HIT_RATE_FLOOR:.2f} floor")
    if cached_p50 >= uncached_p50:
        failures.append(
            f"warmed cached p50 {cached_p50} does not beat the uncached "
            f"sharded p50 {uncached_p50}")

    regression = check_shard_regression(failures)
    for name, row in regression["makespan"].items():
        print(f"  makespan {name}: sharded={row['sharded_cycles']} "
              f"golden={row['golden_cycles']}")

    result = {
        "config": {
            "requests": REQUESTS, "seed": SEED, "zipf": ZIPF,
            "partitions": PARTITIONS, "hit_rate_floor": HIT_RATE_FLOOR,
            "regression_tolerance": REGRESSION_TOLERANCE,
        },
        "hit_stats": hit_stats,
        "latency": {"cached_p50": cached_p50,
                    "uncached_p50": uncached_p50},
        "outcomes": {"cached": outcome_counts(cached, warmed_only=True),
                     "uncached": outcome_counts(uncached,
                                                warmed_only=False)},
        "cache_report": cached.partition_cache.report(),
        "shard_regression": regression,
        "wall_s": round(time.perf_counter() - t0, 3),
        "failures": failures,
        "ok": not failures,
    }
    Path(args.out).write_text(json.dumps(result, indent=1, default=str))
    print(f"wrote {args.out}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("cache bench: invariants hold, warmed hits beat the floor, "
          "cached p50 beats the uncached sharded path")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
