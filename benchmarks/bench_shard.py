"""Shard-failure sweep: sharded scatter/gather under chaos kills.

Runs the seeded chaos harness with K=4 scatter/gather enabled for the
shardable joins and sweeps replica kills (0, 1, 2 permanent mid-run
deaths per 200-request load test), recording per-shard hedge / retry /
partial-result counts and fleet elasticity stats in ``BENCH_SHARD.json``.

Hard requirements, enforced as exit status:

* every sweep entry holds the serving invariants — zero wrong results,
  every completed sharded query golden-digest equal to the unsharded
  run, every degraded query a typed ``PartialResult`` whose coverage
  recomputes from the shard plan;
* every entry is bit-for-bit reproducible from its seed (each config
  runs twice);
* a warmed K=4-shard join beats the single-replica golden on
  virtual-cycle makespan (otherwise sharding is pure overhead).

Usage: ``PYTHONPATH=src python benchmarks/bench_shard.py [--out PATH]``
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.serving import (
    LoadTestConfig,
    Request,
    ServingPolicy,
    ServingRuntime,
    ShardPolicy,
)
from repro.serving.chaos import shard_sweep
from repro.serving.workload import JOIN_NAMES

REQUESTS = 200
SEED = 11
SHARDS = 4


def makespan_comparison():
    """Warmed K-shard makespan vs the unsharded golden, per join."""
    policy = ServingPolicy(shard=ShardPolicy(n_shards=SHARDS))
    runtime = ServingRuntime(n_replicas=SHARDS, policy=policy, seed=SEED)
    runtime.workload.warm()
    for name in JOIN_NAMES:
        runtime.coordinator.warm(runtime.workload.job(name), SHARDS)
    for i, name in enumerate(JOIN_NAMES):
        runtime.submit(Request(id=i, tenant="bench", query=name,
                               arrival=i * 100_000))
    outcomes = runtime.run()
    rows = {}
    for outcome in outcomes:
        golden = runtime.workload.golden(outcome.request.query)
        rows[outcome.request.query] = {
            "status": outcome.status,
            "sharded_cycles": outcome.cycles,
            "golden_cycles": golden.cycles,
            "speedup": round(golden.cycles / max(1, outcome.cycles), 3),
        }
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_SHARD.json",
                        help="output JSON path")
    args = parser.parse_args(argv)

    base = LoadTestConfig(requests=REQUESTS, seed=SEED, shards=SHARDS,
                          faults=True, elastic=True)
    t0 = time.perf_counter()
    result = shard_sweep(base, kills=(0, 1, 2))
    result["wall_s"] = round(time.perf_counter() - t0, 3)

    failures = []
    for entry in result["sweep"]:
        label = f"kills={entry['kills']}"
        out = entry["outcomes"]
        sh = entry["shards"]
        print(f"{label:8s} ok={out['ok']:>3} failed={out['failed']:>3} "
              f"partial={out['partial']:>3} wrong={out['wrong_result']} "
              f"legs={sh['legs']:>3} hedges={sh['hedges_launched']} "
              f"retries={sh['retries']} lost={sh['lost']} "
              f"repro={entry['reproducible']}")
        for violation in entry["violations"]:
            failures.append(f"{label}: {violation}")
        if not entry["reproducible"]:
            failures.append(f"{label}: outcome signature not reproducible")
        if out["wrong_result"]:
            failures.append(f"{label}: served a wrong result under chaos")

    result["makespan"] = makespan_comparison()
    beat = False
    for name, row in result["makespan"].items():
        print(f"makespan {name}: sharded={row['sharded_cycles']} "
              f"golden={row['golden_cycles']} ({row['speedup']}x)")
        if row["status"] != "ok":
            failures.append(f"makespan {name}: sharded run was "
                            f"{row['status']}, not ok")
        if row["sharded_cycles"] < row["golden_cycles"]:
            beat = True
    if not beat:
        failures.append(
            f"no K={SHARDS} sharded join beat its unsharded golden "
            f"makespan — sharding is pure overhead")
    result["ok"] = result["ok"] and not failures
    result["failures"] = failures

    Path(args.out).write_text(json.dumps(result, indent=1, default=str))
    print(f"wrote {args.out}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("shard sweep: all invariants hold, reproducible, "
          "sharded join beats golden")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
