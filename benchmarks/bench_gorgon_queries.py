"""End-to-end Gorgon-vs-Aurochs on the benchmark queries.

Fig. 14 compares Aurochs against CPU/GPU only; fig. 11 covers Gorgon at
the kernel level.  This bench closes the loop end-to-end: the same Q1-Q9
plans run under ``GORGON_POLICY`` (sort-merge joins, sort aggregation,
nested-loop spatial operators — §I's "simpler but asymptotically
sub-optimal algorithms") and are priced on the same fabric.  Results must
be identical; costs must favor Aurochs on the spatial/index-heavy
queries.

Run at reduced scale: Gorgon's all-pairs spatial operators execute in
O(n·m) Python, which is exactly the paper's point about their
infeasibility.
"""

import pytest

from repro.db import ExecutionContext
from repro.perf import CostModel
from repro.workloads import QUERIES, RideshareConfig, generate, run_query
from repro.workloads.policy import AUROCHS_POLICY, GORGON_POLICY

from figutil import emit, fmt_time

_DATA = None


def _data():
    global _DATA
    if _DATA is None:
        _DATA = generate(RideshareConfig(
            n_drivers=300, n_riders=1000, n_locations=64,
            n_rides=8000, n_ride_reqs=1000, n_driver_status=1000))
    return _DATA


def _compare():
    # Zero the fixed stage overhead: it applies identically to both
    # policies and would mask the algorithmic gap at reduced scale.
    model = CostModel(parallel_streams=4, stage_overhead_cycles=0)
    rows = [f"{'query':>6} {'Aurochs':>11} {'Gorgon':>11} {'ratio':>7}"]
    ratios = {}
    for name in QUERIES:
        actx, gctx = ExecutionContext(), ExecutionContext()
        a_result = run_query(name, _data(), actx, policy=AUROCHS_POLICY)
        g_result = run_query(name, _data(), gctx, policy=GORGON_POLICY)
        assert len(a_result) == len(g_result), name
        ta = model.query_runtime(actx)
        tg = model.query_runtime(gctx)
        ratios[name] = tg / ta
        rows.append(f"{name:>6} {fmt_time(ta):>11} {fmt_time(tg):>11} "
                    f"{tg / ta:>6.1f}x")
    return rows, ratios


def test_gorgon_end_to_end(benchmark):
    rows, ratios = benchmark.pedantic(_compare, rounds=1, iterations=1)
    emit("gorgon_queries", rows)
    # The spatial-join-heavy queries pay a clear all-pairs penalty even
    # at this reduced scale (and it grows linearly with table size)...
    assert ratios["q1"] > 2
    assert ratios["q6"] > 2
    # ...while queries dominated by tiny sorts/scans may tilt slightly
    # Gorgon-ward — exactly fig. 11a's "sort wins small tables" regime;
    # no query may favor Gorgon by more than that small-dense margin.
    assert all(r > 0.4 for r in ratios.values())
