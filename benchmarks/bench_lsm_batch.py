"""§IV-B ablation — LSM batch size: index-update latency vs amortization.

Paper: "Batch size is a trade off between index update latency and work
amortization."  Small batches update the index promptly but re-merge
records more often (higher write amplification); large batches amortize
merges but delay visibility.
"""

from repro.structures import LsmTree

from figutil import emit

N = 1 << 14


def _sweep():
    rows = [f"{'batch':>7} {'trees':>6} {'write amp':>10} "
            f"{'merge bytes (MB)':>17}"]
    amps = {}
    for batch in (64, 256, 1024, 4096):
        lsm = LsmTree(batch_size=batch, fanout=16)
        lsm.insert_many((i, i) for i in range(N))
        amp = lsm.write_amplification()
        amps[batch] = amp
        rows.append(f"{batch:>7} {len(lsm.tree_sizes()):>6} {amp:>10.2f} "
                    f"{lsm.events.dram_write_bytes / 1e6:>17.2f}")
    return rows, amps


def test_lsm_batch_tradeoff(benchmark):
    rows, amps = benchmark(_sweep)
    emit("lsm_batch_ablation", rows)
    # Larger batches amortize: write amplification must fall monotonically.
    batches = sorted(amps)
    for a, b in zip(batches, batches[1:]):
        assert amps[b] <= amps[a] + 1e-9


def test_lsm_queries_unaffected_by_batch(benchmark):
    def check():
        results = []
        for batch in (64, 1024):
            lsm = LsmTree(batch_size=batch, fanout=8)
            lsm.insert_many((i % 500, i) for i in range(2000))
            results.append(sorted(lsm.range_query(100, 200)))
        return results
    a, b = benchmark(check)
    assert a == b  # batch size is a performance knob, not a semantic one
