"""PR 4 serving chaos bench: load sweep + invariants + latency report.

Runs the seeded open-loop chaos harness through the concurrent serving
runtime at three offered-load levels (under capacity, at capacity, well
over capacity), with and without flaky replicas, and records per-scenario
latency quantiles, shed rates, and outcome mixes in ``BENCH_SERVING.json``.

Every scenario must hold the serving invariants — zero wrong results,
every non-success typed, one outcome per request — and the overloaded
scenario must actually shed (a bounded queue that never sheds under 1.7x
offered load is not bounded).  Each scenario is also re-run to prove the
outcome signature is bit-identical for the seed.

Usage: ``PYTHONPATH=src python benchmarks/bench_serving.py [--out PATH]``
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.serving import (
    LoadTestConfig,
    ServingWorkload,
    chaos_report,
    check_invariants,
    run_loadtest,
    signature,
)

#: (name, mean_interarrival, faults).  Capacity works out to one request
#: per ~550 virtual cycles for the default mix on four replicas.
SCENARIOS = (
    ("light", 1_500, False),
    ("at_capacity", 600, False),
    ("overload", 350, False),
    ("overload_faults", 350, True),
)

REQUESTS = 200
SEED = 0


def run_scenarios():
    results = {}
    failures = []
    workload = ServingWorkload()
    workload.warm()                       # goldens priced once, up front
    for name, interarrival, faults in SCENARIOS:
        cfg = LoadTestConfig(requests=REQUESTS, seed=SEED,
                             mean_interarrival=interarrival, faults=faults)
        t0 = time.perf_counter()
        runtime = run_loadtest(cfg, workload)
        wall = time.perf_counter() - t0
        violations = check_invariants(runtime)
        if signature(runtime) != signature(run_loadtest(cfg, workload)):
            violations.append("outcome signature not reproducible")
        report = chaos_report(cfg, runtime, violations)
        report["wall_s"] = round(wall, 3)
        results[name] = report
        out = report["outcomes"]
        print(f"{name:16s} ok={out['ok']:>3} shed={out['shed']:>3} "
              f"deadline={out['deadline']:>3} failed={out['failed']:>3} "
              f"wrong={out['wrong_result']} "
              f"shed_rate={report['shed_rate']:.3f} wall={wall:.2f}s")
        for v in violations:
            failures.append(f"{name}: {v}")
    if results["overload"]["outcomes"]["shed"] == 0:
        failures.append("overload scenario shed nothing — admission bound "
                        "is not binding at 1.7x offered load")
    if results["light"]["shed_rate"] > results["overload"]["shed_rate"]:
        failures.append("shed rate decreased as offered load grew")
    return results, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    default_out = (Path(__file__).resolve().parent.parent
                   / "BENCH_SERVING.json")
    parser.add_argument("--out", default=str(default_out),
                        help="where to write the JSON record")
    args = parser.parse_args(argv)
    results, failures = run_scenarios()
    payload = {
        "benchmark": "serving chaos harness load sweep (PR 4)",
        "requests_per_scenario": REQUESTS,
        "seed": SEED,
        "scenarios": results,
        "invariants_ok": not failures,
    }
    Path(args.out).write_text(
        json.dumps(payload, indent=2, default=str) + "\n")
    print(f"\nwrote {args.out}")
    if failures:
        print(f"FAIL: {len(failures)} violation(s):", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("all scenarios hold the serving invariants")
    return 0


if __name__ == "__main__":
    sys.exit(main())
