"""§III-B ablation — Aurochs' invalidate-on-grant issue queues vs
Capstan's in-order dequeue.

Paper claims: because threads may reorder freely, granted requests are
invalidated immediately, so Aurochs' issue queues are HALF as deep as
Capstan's (8 vs 16) for equivalent throughput; with 16 lanes and depth 8
the allocator considers up to 128 requests per cycle.
"""

import random

from repro.dataflow import Graph, LANES, SinkTile, SourceTile, run_graph
from repro.memory import (
    DEPTH_AUROCHS,
    DEPTH_CAPSTAN,
    PortConfig,
    ScratchpadMemory,
    ScratchpadTile,
)

from figutil import emit

N_REQUESTS = 4096


def _run(depth, in_order, seed=90):
    """Random sparse gathers through one scratchpad configuration."""
    rng = random.Random(seed)
    mem = ScratchpadMemory(f"m{depth}{in_order}")
    region = mem.region("data", 4096, 1, fill=0)
    g = Graph("reorder")
    src = g.add(SourceTile(
        "src", [(i, rng.randrange(4096)) for i in range(N_REQUESTS)]))
    spad = g.add(ScratchpadTile(
        "spad", mem,
        [PortConfig(mode="read", region=region, addr=lambda r: r[1],
                    combine=lambda r, v: r)],
        queue_depth=depth, in_order_dequeue=in_order))
    sink = g.add(SinkTile("sink"))
    g.connect(src, spad)
    g.connect(spad, sink)
    stats = run_graph(g)
    assert len(sink.records) == N_REQUESTS
    return stats


def _ablation_lines():
    aurochs = _run(DEPTH_AUROCHS, in_order=False)
    capstan = _run(DEPTH_CAPSTAN, in_order=True)
    shallow_capstan = _run(DEPTH_AUROCHS, in_order=True)
    lines = [
        f"{'config':<38} {'cycles':>8} {'grants/active cycle':>20}",
        f"{'Aurochs (depth 8, invalidate)':<38} {aurochs.cycles:>8} "
        f"{aurochs.scratchpads['spad'].bank_throughput:>20.2f}",
        f"{'Capstan (depth 16, in-order)':<38} {capstan.cycles:>8} "
        f"{capstan.scratchpads['spad'].bank_throughput:>20.2f}",
        f"{'Capstan at depth 8 (ablation)':<38} {shallow_capstan.cycles:>8} "
        f"{shallow_capstan.scratchpads['spad'].bank_throughput:>20.2f}",
        f"allocator readout: {LANES} lanes x depth {DEPTH_AUROCHS} = "
        f"{LANES * DEPTH_AUROCHS} requests considered per cycle per port",
    ]
    return lines, aurochs, capstan, shallow_capstan


def test_half_depth_queues_match_capstan(benchmark):
    lines, aurochs, capstan, shallow = benchmark(_ablation_lines)
    emit("reorder_pipeline", lines)
    # Aurochs at depth 8 matches (or beats) Capstan at depth 16...
    assert aurochs.cycles <= capstan.cycles * 1.05
    # ...while Capstan *at the same depth* is no better than Aurochs
    # (head-of-line blocking wastes its slots).
    assert aurochs.cycles <= shallow.cycles * 1.05


def test_allocator_considers_128_requests(benchmark):
    stats = benchmark.pedantic(lambda: _run(DEPTH_AUROCHS, False),
                               rounds=1, iterations=1)
    # §III-B: "the allocator considers up to 128 requests for execution".
    assert LANES * DEPTH_AUROCHS == 128
    assert stats.scratchpads["spad"].considered_bids > 0
