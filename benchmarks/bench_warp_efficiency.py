"""§III-A's GPU profile — warp execution efficiency on hash join.

Paper: "We profile a CUDA hash join implementation on a V100 GPU and show
a warp execution efficiency of 62% during the build phase and 46% during
the probe phase, indicating most lanes are idle and the GPU is not
memory-bound."

This bench runs the SIMT divergence simulator on the same kernel shapes
and contrasts the result with Aurochs' lane occupancy on the equivalent
cycle-simulated probe pipeline (thread compaction refills lanes on
divergence, so occupancy stays high).
"""

import random

from repro.baselines import SimtHashJoin
from repro.dataflow import run_graph
from repro.structures import HashTableDataflow

from figutil import emit

N = 1 << 14


def _keys(seed=77):
    rng = random.Random(seed)
    table = [rng.randrange(1 << 30) for __ in range(N)]
    probes = [rng.choice(table) if rng.random() < 0.8
              else rng.randrange(1 << 30) for __ in range(N)]
    return table, probes


def _simt_efficiencies():
    table, probes = _keys()
    sim = SimtHashJoin()
    build = sim.build(table, N).warp_efficiency
    probe = sim.probe(probes, table, N).warp_efficiency
    barrier = SimtHashJoin(block_barrier=True).probe(
        probes, table, N).warp_efficiency
    return build, probe, barrier


def _aurochs_probe_occupancy():
    rng = random.Random(78)
    n = 2048
    ht = HashTableDataflow(n_buckets=n, spad_node_capacity=2 * n)
    ht.load([(rng.randrange(1 << 20), i) for i in range(n)])
    queries = [(q, rng.randrange(1 << 20)) for q in range(n)]
    g = ht.probe_graph(queries, emit_all=False)
    stats = run_graph(g)
    # Occupancy of the chain-walk loop body (the node gather tile).
    return stats.tiles["node_rd"].lane_occupancy


def test_warp_efficiency(benchmark):
    build, probe, barrier = benchmark(_simt_efficiencies)
    occupancy = _aurochs_probe_occupancy()
    emit("warp_efficiency", [
        f"GPU SIMT build warp efficiency:  {build:.2f}   (paper: 0.62)",
        f"GPU SIMT probe warp efficiency:  {probe:.2f}   (paper: 0.46)",
        f"GPU probe incl. block barriers:  {barrier:.2f}",
        f"Aurochs probe-loop lane occupancy: {occupancy:.2f} "
        "(compaction refills lanes)",
    ])
    assert 0.45 < build < 0.80
    assert 0.30 < probe < 0.60
    assert probe < build
    # Aurochs' whole point: lanes stay busier than the GPU's probe phase.
    assert occupancy > probe
