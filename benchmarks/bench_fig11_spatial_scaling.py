"""Fig. 11b — spatial join runtime: fixed table joined against a scaling
table.

Paper claims to reproduce (shape): Gorgon presorts the larger table,
giving O(n log n) behaviour, while Aurochs probes a spatial index in
O(log n) per record; without any index a spatial join needs all-to-all
comparisons, "making it impractical for real-world datasets".  Aurochs
matches software asymptotics but wins on constants against CPU and GPU.
"""

import math

from repro.baselines import GorgonModel
from repro.perf import CostModel, kernels
from repro.perf.params import CPU, GPU

from figutil import emit, fmt_time

N_FIXED = 10 ** 5
SIZES = [10 ** 4, 10 ** 5, 10 ** 6, 10 ** 7, 10 ** 8]
STREAMS = 16


def _aurochs_seconds(n):
    model = CostModel(parallel_streams=STREAMS)
    return model.runtime_seconds(kernels.rtree_join_events(N_FIXED, n))


def _gorgon_seconds(n):
    return GorgonModel(parallel_streams=STREAMS).spatial_join_seconds(
        N_FIXED, n)


def _gorgon_nlj_seconds(n):
    return GorgonModel(parallel_streams=STREAMS).spatial_join_seconds(
        N_FIXED, n, nested_loop=True)


def _cpu_seconds(n):
    probes = n * max(1.0, math.log2(N_FIXED) / 8.0)
    return probes / (CPU.cores * CPU.spatial_pair_per_s)


def _gpu_seconds(n):
    return N_FIXED * n / GPU.spatial_pair_per_s  # brute-force pair kernel


def _figure_rows():
    rows = [f"{'rows':>12} {'Aurochs':>12} {'Gorgon(sort)':>13} "
            f"{'Gorgon(NLJ)':>12} {'CPU':>12} {'GPU':>12}"]
    for n in SIZES:
        rows.append(
            f"{n:>12} {fmt_time(_aurochs_seconds(n)):>12} "
            f"{fmt_time(_gorgon_seconds(n)):>13} "
            f"{fmt_time(_gorgon_nlj_seconds(n)):>12} "
            f"{fmt_time(_cpu_seconds(n)):>12} "
            f"{fmt_time(_gpu_seconds(n)):>12}")
    return rows


def test_fig11b_spatial_scaling(benchmark):
    rows = benchmark(_figure_rows)
    emit("fig11b_spatial_scaling", rows)
    # Aurochs beats Gorgon's presort at scale (log-factor + constants).
    assert _aurochs_seconds(SIZES[-1]) < _gorgon_seconds(SIZES[-1])
    # The index-less nested loop is orders of magnitude off at scale.
    assert _gorgon_nlj_seconds(SIZES[-1]) > 100 * _gorgon_seconds(SIZES[-1])
    # Aurochs wins against both software baselines everywhere.
    for n in SIZES:
        assert _aurochs_seconds(n) < _cpu_seconds(n)
        assert _aurochs_seconds(n) < _gpu_seconds(n)


def test_fig11b_superlinear_gap_grows(benchmark):
    def gap(n):
        return _gorgon_seconds(n) / _aurochs_seconds(n)
    ratio = benchmark(lambda: gap(SIZES[-1]) / gap(SIZES[1]))
    # O(n log n) vs O(n): the Gorgon/Aurochs gap widens with scale.
    assert ratio > 1.0
