"""Perf trajectory of the columnar vector backend vs burst execution.

Runs the ``bench_pr2`` case set under ``scheduler="vector"`` and under
the burst event scheduler it falls back to, verifies the resulting
``SimStats`` are bit-identical (the event/exhaustive path stays the
oracle — the vector backend may only change wall-clock), and gates
against the committed ``BENCH_PR2.json`` baseline:

* ``probe_saturated_2048t`` must hit a >= 4.5x speedup over its
  recorded PR 2 event-scheduler wall-clock — the expression-compiler
  acceptance target (raised from the vector backend's original 3.0x).
  A miss exits with the distinct code 3 so CI can separate the open
  perf item from true regressions, which always exit 1;
* the ramp share of lowered-window execution time (ramp wall over
  ramp + saturated wall, excluding the one-time lowering build) must
  stay under ``RAMP_CEILING`` — the vectorized ramp's reason to exist;
* any case whose vector wall-clock regresses more than ``TOLERANCE``
  past its recorded PR 2 time fails the run.

Results — per-case vector and burst times, the vector/burst ratio,
vector-window counts/lengths, and the per-window-shape wall-clock
breakdown (lowering build / ramp / saturated) — are written to
``BENCH_VECTOR.json``.

Wall-clock baselines are machine-dependent; on shared CI runners the
absolute comparison is noisy, which is why the tolerance is a generous
25% and why the vector-vs-burst ratio (same process, same machine) is
recorded alongside it.

Usage: ``PYTHONPATH=src python benchmarks/bench_vector.py [--out PATH]``
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.dataflow import Engine

sys.path.insert(0, str(Path(__file__).resolve().parent))
import bench_pr2  # noqa: E402  (sibling benchmark module)

REPEATS = 3

#: Allowed wall-clock regression vs the committed PR 2 event baseline.
TOLERANCE = 0.25

#: ISSUE 10 acceptance target: hard-fail (not advisory) speedups vs the
#: PR 2 event scheduler (ISSUE 7 set 3.0x; the expression compiler
#: raises the bar).
HARD_TARGETS = {"probe_saturated_2048t": 4.5}

#: Ceiling on ramp wall-clock as a fraction of lowered-window execution
#: (ramp / (ramp + vector), lowering build excluded).  ROADMAP item 2
#: recorded the per-cycle ramp at ~40% of the saturated probe's residual
#: time; the vectorized ramp must keep it under this.
RAMP_CEILING = 0.30


def _time_engine(factory, scheduler):
    best = float("inf")
    stats = None
    windows = {}
    window_wall = {}
    for __ in range(REPEATS):
        graph = factory()           # fresh graph per run: no shared state
        engine = Engine(graph, scheduler=scheduler, burst=True)
        t0 = time.perf_counter()
        stats = engine.run()
        wall = time.perf_counter() - t0
        if wall < best:
            best = wall
            window_wall = dict(getattr(engine, "window_wall", {}))
        windows = engine.burst_windows
    return best, stats, windows, window_wall


def run_benchmarks(baseline_cases):
    results = {}
    failures = []
    target_misses = []
    for name, factory in bench_pr2.CASES:
        wall_burst, stats_burst, __, __w = _time_engine(factory, "event")
        wall_vec, stats_vec, windows, wwall = _time_engine(factory,
                                                           "vector")
        if stats_vec != stats_burst:
            raise AssertionError(
                f"{name}: vector backend diverged from burst event "
                f"scheduling (cycles {stats_vec.cycles} vs "
                f"{stats_burst.cycles})")
        base = baseline_cases.get(name, {}).get("wall_s_event")
        entry = {
            "simulated_cycles": stats_vec.cycles,
            "wall_s_event_burst": round(wall_burst, 6),
            "wall_s_vector": round(wall_vec, 6),
            "vector_vs_burst": round(wall_burst / wall_vec, 2),
            "vector_windows": {
                cls: {"n": len(sizes), "cycles": sum(sizes)}
                for cls, sizes in sorted(windows.items())},
            # Per-window-shape wall-clock: "lower" is the one-time
            # dispatch + expression-compile build, "ramp" the fixed-width
            # pre-saturation windows, "vector" the saturated windows.
            "window_wall_s": {shape: round(sec, 6)
                              for shape, sec in sorted(wwall.items())},
        }
        lowered = wwall.get("ramp", 0.0) + wwall.get("vector", 0.0)
        if lowered > 0.0:
            ramp_fraction = wwall.get("ramp", 0.0) / lowered
            entry["ramp_fraction"] = round(ramp_fraction, 4)
            entry["ramp_fraction_ceiling"] = RAMP_CEILING
            if ramp_fraction > RAMP_CEILING:
                failures.append(
                    f"{name} (ramp fraction {ramp_fraction:.2f} > "
                    f"{RAMP_CEILING} ceiling)")
        if base is not None:
            entry["wall_s_event_pr2_baseline"] = base
            entry["speedup_vs_pr2_baseline"] = round(base / wall_vec, 2)
            entry["regressed"] = wall_vec > base * (1.0 + TOLERANCE)
            if entry["regressed"]:
                failures.append(
                    f"{name} (regressed >{TOLERANCE:.0%} vs PR 2)")
        target = HARD_TARGETS.get(name)
        if target is not None and base is not None:
            entry["target_speedup"] = target
            entry["target_met"] = base / wall_vec >= target
            if not entry["target_met"]:
                target_misses.append(
                    f"{name} (speedup {base / wall_vec:.2f}x < {target}x)")
        results[name] = entry
        windows_str = " ".join(
            f"{cls}:{len(sizes)}w/{sum(sizes)}c"
            for cls, sizes in sorted(windows.items())) or "-"
        ramp_str = ("" if "ramp_fraction" not in entry
                    else f" ramp={entry['ramp_fraction']:.0%}")
        print(f"{name:24s} cycles={stats_vec.cycles:>7} "
              f"burst={wall_burst * 1e3:8.1f}ms "
              f"vector={wall_vec * 1e3:8.1f}ms "
              f"vs_pr2={'' if base is None else f'{base / wall_vec:5.2f}x'} "
              f"windows={windows_str}{ramp_str}")
    return results, failures, target_misses


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    root = Path(__file__).resolve().parent.parent
    parser.add_argument("--out", default=str(root / "BENCH_VECTOR.json"),
                        help="where to write the JSON record")
    parser.add_argument("--baseline", default=str(root / "BENCH_PR2.json"),
                        help="committed PR 2 baseline to gate against")
    args = parser.parse_args(argv)
    baseline = json.loads(Path(args.baseline).read_text())
    results, failures, target_misses = run_benchmarks(baseline["cases"])
    payload = {
        "benchmark": "columnar vector backend vs burst execution",
        "repeats_best_of": REPEATS,
        "tolerance": TOLERANCE,
        "ramp_fraction_ceiling": RAMP_CEILING,
        "baseline": Path(args.baseline).name,
        "cases": results,
        "failures": failures,
        "target_misses": target_misses,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    targets_met = [n for n in HARD_TARGETS if results[n].get("target_met")]
    print(f"\nwrote {args.out} ({len(targets_met)}/{len(HARD_TARGETS)} "
          f"hard targets met, {len(failures)} failures, "
          f"{len(target_misses)} target misses)")
    if failures:
        print(f"FAIL: {'; '.join(failures)}", file=sys.stderr)
        return 1
    if target_misses:
        # Distinct exit code: a speedup-target miss against the frozen,
        # machine-dependent PR 2 wall-clock baseline — the open ROADMAP
        # perf item — not a regression, divergence, or ramp blow-up.
        print(f"TARGET MISS: {'; '.join(target_misses)}", file=sys.stderr)
        return 3
    return 0


if __name__ == "__main__":
    sys.exit(main())
