"""Figs. 3/5/6 behaviours — cycle-level microbenchmarks of the threading
model's core claims:

* a pointer-chasing loop runs at line rate when enough threads are in
  flight, despite the loop-carried dependence (fig. 5a);
* killing a thread refills its lane from upstream (lane occupancy stays
  high through heavy divergence, fig. 4);
* forking walks multiple tree paths simultaneously (fig. 6b).
"""

import random

from repro.dataflow import Engine, run_graph
from repro.structures import BTreeDataflow, HashTableDataflow, ImmutableBTree

from figutil import emit


def _probe_cycles(n_threads, chain_hot=False, seed=80):
    """Cycle count for n_threads hash probes."""
    rng = random.Random(seed)
    n = 1024
    ht = HashTableDataflow(n_buckets=n, spad_node_capacity=4 * n)
    if chain_hot:
        ht.load([(7, i) for i in range(64)])       # one long chain
    else:
        ht.load([(rng.randrange(1 << 20), i) for i in range(n)])
    queries = [(q, rng.randrange(1 << 20)) for q in range(n_threads)]
    stats = run_graph(ht.probe_graph(queries, emit_all=False))
    return stats


def _line_rate_lines():
    lines = ["probe throughput vs threads in flight (fig. 5a):"]
    base = None
    for n_threads in (32, 128, 512, 2048):
        stats = _probe_cycles(n_threads)
        per_thread = stats.cycles / n_threads
        if base is None:
            base = per_thread
        lines.append(f"  threads={n_threads:>5}: {stats.cycles:>6} cycles "
                     f"({per_thread:.2f} cycles/thread)")
    return lines, base


def test_pointer_chase_line_rate(benchmark):
    lines, __ = benchmark(_line_rate_lines)
    # Full pipelines amortize: per-thread cost at 2048 threads must be a
    # small fraction of the 32-thread cost.
    few = _probe_cycles(32).cycles / 32
    many = _probe_cycles(2048).cycles / 2048
    lines.append(f"  amortization: {few / many:.1f}x "
                 "fewer cycles/thread at depth")
    emit("microbench_line_rate", lines)
    assert many < few / 4


def test_lane_refill_on_divergence(benchmark):
    # Heavy divergence (mixed hit/miss chains) must not crater occupancy:
    # compaction refills lanes with upstream threads.
    def run():
        return _probe_cycles(2048)
    stats = benchmark(run)
    occ = stats.tiles["node_rd"].lane_occupancy
    emit("microbench_lane_refill",
         [f"probe-loop gather lane occupancy at 2048 threads: {occ:.2f}"])
    assert occ > 0.5


def test_fork_parallel_tree_walk(benchmark):
    # A wide B-tree range search forks threads down many subtrees; with a
    # single query thread the fork is the only parallelism source.
    rng = random.Random(81)
    pairs = [(rng.randrange(1 << 16), i) for i in range(2048)]
    tree = ImmutableBTree.bulk_load(pairs, fanout=8)
    bd = BTreeDataflow(tree)

    def run():
        g = bd.search_graph([(0, 0, 1 << 16)])
        return Engine(g).run(), g

    stats, g = benchmark.pedantic(run, rounds=1, iterations=1)
    hits = len(g.tile("hits").records)
    forked = g.tile("descend").stats.records_out
    emit("microbench_fork", [
        f"one root thread -> {forked} forked traversal threads "
        f"-> {hits} leaf hits in {stats.cycles} cycles",
    ])
    assert hits == 2048
    assert forked > 64
